(* Tests for Pm_store: the DMA block driver (descriptor-ring wrap-around,
   durability at the simulated media), the partition/cache/log layers
   (eviction under a full cache, flush-on-detach durability, recovery),
   the /shared/store factory with cross-domain callers, placement of the
   policy layers, interposition on the block path, the channel-backed
   block proxy, and the KV workload end-to-end over the loopback NIC. *)

open Paramecium

let fixture ?(placement = System.Certified) ?(cache_capacity = 32) () =
  let sys = System.create ~seed:0xBEEF ~key_bits:384 () in
  let k = System.kernel sys in
  let store = System.setup_store sys ~placement ~cache_capacity () in
  (sys, k, store)

let switch_to k dom =
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) dom.Domain.id

let blob s = Value.Blob (Bytes.of_string s)

let block_write ctx inst ~block data =
  match
    Invoke.call ctx inst ~iface:"block" ~meth:"write"
      [ Value.Int block; blob data ]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "block write: %s" (Oerror.to_string e)

let block_read ctx inst ~block =
  match Invoke.call ctx inst ~iface:"block" ~meth:"read" [ Value.Int block ] with
  | Ok (Value.Blob b) -> b
  | Ok v -> Alcotest.failf "block read returned %s" (Value.to_string v)
  | Error e -> Alcotest.failf "block read: %s" (Oerror.to_string e)

let block_flush ctx inst =
  match Invoke.call ctx inst ~iface:"block" ~meth:"flush" [] with
  | Ok (Value.Int n) -> n
  | Ok v -> Alcotest.failf "flush returned %s" (Value.to_string v)
  | Error e -> Alcotest.failf "flush: %s" (Oerror.to_string e)

let block_stats ctx inst =
  match Invoke.call ctx inst ~iface:"block" ~meth:"stats" [] with
  | Ok (Value.List vs) ->
    List.map (function Value.Int n -> n | _ -> Alcotest.fail "int stats") vs
  | _ -> Alcotest.fail "stats failed"

let media_prefix k ~block len =
  String.sub (Blkdev.peek_block (Kernel.blkdev k) block) 0 len

(* --- raw driver --------------------------------------------------------- *)

let test_driver_roundtrip () =
  let _sys, k, store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let drv = store.System.blk_driver in
  block_write ctx drv ~block:5 "hello-dma";
  Alcotest.(check string)
    "write reached the media" "hello-dma" (media_prefix k ~block:5 9);
  let back = block_read ctx drv ~block:5 in
  Alcotest.(check string)
    "read returns the block" "hello-dma"
    (Bytes.sub_string back 0 9);
  Alcotest.(check int) "device completed two ops" 2 (Blkdev.completed (Kernel.blkdev k));
  Alcotest.(check int) "nothing left in flight" 0 (Blkdev.in_flight (Kernel.blkdev k));
  (* out-of-range rejected at the driver *)
  (match
     Invoke.call ctx drv ~iface:"block" ~meth:"read" [ Value.Int 100_000 ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range read must fail")

let test_ring_wraparound () =
  let _sys, k, store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let drv = store.System.blk_driver in
  (* 20 blocks through an 8-slot ring: the tail wraps twice and several
     requests are in flight inside each posted window *)
  let n = 20 in
  let pairs =
    List.init n (fun i ->
        Value.Pair
          (Value.Int (400 + i), blob (Printf.sprintf "wrap-%02d" i)))
  in
  (match
     Invoke.call ctx drv ~iface:"blkring" ~meth:"write_many"
       [ Value.List pairs ]
   with
  | Ok (Value.Int written) -> Alcotest.(check int) "all written" n written
  | Ok v -> Alcotest.failf "write_many returned %s" (Value.to_string v)
  | Error e -> Alcotest.failf "write_many: %s" (Oerror.to_string e));
  (* every block made it to the media in order *)
  for i = 0 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "block %d durable" (400 + i))
      (Printf.sprintf "wrap-%02d" i)
      (media_prefix k ~block:(400 + i) 7)
  done;
  let blocks = List.init n (fun i -> Value.Int (400 + i)) in
  (match
     Invoke.call ctx drv ~iface:"blkring" ~meth:"read_many" [ Value.List blocks ]
   with
  | Ok (Value.List datas) ->
    Alcotest.(check int) "all read back" n (List.length datas);
    List.iteri
      (fun i v ->
        match v with
        | Value.Blob b ->
          Alcotest.(check string) "payload" (Printf.sprintf "wrap-%02d" i)
            (Bytes.sub_string b 0 7)
        | _ -> Alcotest.fail "blob expected")
      datas
  | Ok v -> Alcotest.failf "read_many returned %s" (Value.to_string v)
  | Error e -> Alcotest.failf "read_many: %s" (Oerror.to_string e));
  Alcotest.(check int)
    "device saw all 40 ops" 40 (Blkdev.completed (Kernel.blkdev k));
  Alcotest.(check int) "ring drained" 0 (Blkdev.in_flight (Kernel.blkdev k))

(* --- factory + partition ------------------------------------------------ *)

let test_factory_partition_window () =
  let sys, k, _store = fixture () in
  let udom = System.new_domain sys "storeuser" in
  let factory = Kernel.bind k udom "/shared/store" in
  switch_to k udom;
  let uctx = Kernel.ctx k udom in
  (match
     Invoke.call uctx factory ~iface:"store.factory" ~meth:"partition"
       [ Value.Str "p-hi"; Value.Str "/store/blkdrv"; Value.Int 700;
         Value.Int 4 ]
   with
  | Ok (Value.Handle _) -> ()
  | Ok v -> Alcotest.failf "partition returned %s" (Value.to_string v)
  | Error e -> Alcotest.failf "factory partition: %s" (Oerror.to_string e));
  (* the component landed in the caller's domain and under /store *)
  let part = Kernel.bind k udom "/store/p-hi" in
  Alcotest.(check int) "partition lives in the caller's domain" udom.Domain.id
    part.Instance.domain;
  block_write uctx part ~block:0 "windowed";
  switch_to k (Kernel.kernel_domain k);
  Alcotest.(check string)
    "window translated to base 700" "windowed" (media_prefix k ~block:700 8);
  switch_to k udom;
  (match Invoke.call uctx part ~iface:"block" ~meth:"read" [ Value.Int 4 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read past the window must fail");
  switch_to k (Kernel.kernel_domain k)

(* --- cache -------------------------------------------------------------- *)

let test_cache_eviction_when_full () =
  let _sys, k, _store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let factory = Kernel.bind k kdom "/shared/store" in
  ignore
    (Invoke.call_exn ctx factory ~iface:"store.factory" ~meth:"cache"
       [ Value.Str "c-small"; Value.Str "/store/part0"; Value.Int 4 ]);
  let cache = Kernel.bind k kdom "/store/c-small" in
  (* fill the cache with dirty blocks *)
  for i = 0 to 3 do
    block_write ctx cache ~block:(30 + i) (Printf.sprintf "dirty-%d" i)
  done;
  (match block_stats ctx cache with
  | [ _; misses; evictions; writebacks; dirty; capacity ] ->
    Alcotest.(check int) "four misses" 4 misses;
    Alcotest.(check int) "no evictions yet" 0 evictions;
    Alcotest.(check int) "no writebacks yet" 0 writebacks;
    Alcotest.(check int) "four dirty lines" 4 dirty;
    Alcotest.(check int) "line capacity in stats" 4 capacity
  | s -> Alcotest.failf "unexpected stats arity %d" (List.length s));
  Alcotest.(check string)
    "dirty block not yet on media"
    (String.make 7 '\000')
    (media_prefix k ~block:30 7);
  (* a fifth distinct block forces the LRU line (block 30) out *)
  block_write ctx cache ~block:99 "evictor";
  (match block_stats ctx cache with
  | [ _; _; evictions; writebacks; dirty; _ ] ->
    Alcotest.(check int) "one eviction" 1 evictions;
    Alcotest.(check int) "one writeback" 1 writebacks;
    Alcotest.(check int) "still full of dirty lines" 4 dirty
  | _ -> Alcotest.fail "stats failed");
  Alcotest.(check string)
    "evicted block written back through partition to media" "dirty-0"
    (media_prefix k ~block:30 7);
  (* rereading the evicted block misses and refetches from below *)
  let back = block_read ctx cache ~block:30 in
  Alcotest.(check string) "refetched" "dirty-0" (Bytes.sub_string back 0 7);
  (* a hit costs no device op: completed count stays put *)
  let before = Blkdev.completed (Kernel.blkdev k) in
  ignore (block_read ctx cache ~block:30);
  Alcotest.(check int) "hit touches no device" before
    (Blkdev.completed (Kernel.blkdev k))

let test_flush_on_detach_durability () =
  let _sys, k, store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let cache = store.System.block_cache in
  block_write ctx cache ~block:12 "must-survive";
  Alcotest.(check string)
    "write-back: media still clean"
    (String.make 12 '\000')
    (media_prefix k ~block:12 12);
  let factory = Kernel.bind k kdom "/shared/store" in
  ignore
    (Invoke.call_exn ctx factory ~iface:"store.factory" ~meth:"detach"
       [ Value.Str "cache0" ]);
  Alcotest.(check string)
    "detach flushed the dirty line down to the device" "must-survive"
    (media_prefix k ~block:12 12);
  (* the endpoint is gone and the registry agrees *)
  (match Kernel.bind k kdom "/store/cache0" with
  | exception _ -> ()
  | _ -> Alcotest.fail "/store/cache0 must be unregistered after detach");
  (match Storereg.find ~machine:(Kernel.machine k) "cache0" with
  | Some e ->
    Alcotest.(check bool) "marked detached" true e.Storereg.detached;
    Alcotest.(check bool) "no dangling binding" true (e.Storereg.bound = None)
  | None -> Alcotest.fail "cache0 entry missing");
  (* revoked: the log above it can no longer reach it *)
  match
    Invoke.call ctx store.System.log ~iface:"log" ~meth:"append"
      [ blob "orphan" ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "append through a detached cache must fail"

let test_cache_size_transparent () =
  let _sys, k, store = fixture ~cache_capacity:4 () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  (* size() must be the lower layer's geometry, not the line count: the
     log above computes its capacity from it, so a 4-line cache over a
     256-block partition must report 256, or the log tops out at 3 *)
  (match
     Invoke.call_exn ctx store.System.block_cache ~iface:"block" ~meth:"size" []
   with
  | Value.Int n ->
    Alcotest.(check int) "cache forwards the partition's size" 256 n
  | v -> Alcotest.failf "size returned %s" (Value.to_string v));
  let log = store.System.log in
  for i = 0 to 9 do
    match
      Invoke.call ctx log ~iface:"log" ~meth:"append"
        [ blob (Printf.sprintf "rec-%d" i) ]
    with
    | Ok (Value.Int seq) -> Alcotest.(check int) "sequence number" i seq
    | Ok v -> Alcotest.failf "append returned %s" (Value.to_string v)
    | Error e ->
      Alcotest.failf "append %d must survive cache spill: %s" i
        (Oerror.to_string e)
  done

(* --- log + recovery ----------------------------------------------------- *)

let test_log_append_recover () =
  let _sys, k, store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let log = store.System.log in
  List.iteri
    (fun i payload ->
      match Invoke.call_exn ctx log ~iface:"log" ~meth:"append" [ blob payload ] with
      | Value.Int seq -> Alcotest.(check int) "sequence numbers" i seq
      | v -> Alcotest.failf "append returned %s" (Value.to_string v))
    [ "alpha"; "beta"; "gamma" ];
  ignore (block_flush ctx log);
  (* a fresh log over the same lower layer recovers the entry count *)
  let api = Kernel.api k in
  let log2 = Blocklog.create api kdom ~name:"log-recovered" ~lower:"/store/cache0" () in
  (match Invoke.call_exn ctx log2 ~iface:"log" ~meth:"recover" [] with
  | Value.Int n -> Alcotest.(check int) "recovered all entries" 3 n
  | v -> Alcotest.failf "recover returned %s" (Value.to_string v));
  match Invoke.call_exn ctx log2 ~iface:"log" ~meth:"get" [ Value.Int 1 ] with
  | Value.Blob b -> Alcotest.(check string) "record intact" "beta" (Bytes.to_string b)
  | v -> Alcotest.failf "get returned %s" (Value.to_string v)

(* --- kv ----------------------------------------------------------------- *)

let kv_get ctx kv key =
  match Invoke.call_exn ctx kv ~iface:"kv" ~meth:"get" [ blob key ] with
  | Value.Pair (Value.Bool found, Value.Blob v) -> (found, Bytes.to_string v)
  | v -> Alcotest.failf "get returned %s" (Value.to_string v)

let test_kv_local_recover () =
  let _sys, k, _store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let api = Kernel.api k in
  let kv = Kv.create api kdom ~name:"kv0" ~log:"/store/log0" () in
  ignore (Invoke.call_exn ctx kv ~iface:"kv" ~meth:"put" [ blob "a"; blob "1" ]);
  ignore (Invoke.call_exn ctx kv ~iface:"kv" ~meth:"put" [ blob "b"; blob "2" ]);
  ignore (Invoke.call_exn ctx kv ~iface:"kv" ~meth:"put" [ blob "a"; blob "3" ]);
  ignore (Invoke.call_exn ctx kv ~iface:"kv" ~meth:"del" [ blob "b" ]);
  Alcotest.(check (pair bool string)) "latest write wins" (true, "3") (kv_get ctx kv "a");
  Alcotest.(check (pair bool string)) "deleted" (false, "") (kv_get ctx kv "b");
  ignore (Invoke.call_exn ctx kv ~iface:"kv" ~meth:"flush" []);
  (* replaying the log rebuilds the same map: puts, overwrites, tombstones *)
  let kv2 = Kv.create api kdom ~name:"kv-recovered" ~log:"/store/log0" () in
  (match Invoke.call_exn ctx kv2 ~iface:"kv" ~meth:"recover" [] with
  | Value.Int live -> Alcotest.(check int) "one live key" 1 live
  | v -> Alcotest.failf "recover returned %s" (Value.to_string v));
  Alcotest.(check (pair bool string)) "recovered value" (true, "3") (kv_get ctx kv2 "a");
  Alcotest.(check (pair bool string)) "tombstone honoured" (false, "") (kv_get ctx kv2 "b")

(* --- placement ---------------------------------------------------------- *)

let test_placement_verified () =
  let _sys, k, store = fixture ~placement:System.Verified () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  block_write ctx store.System.block_cache ~block:3 "verified-path";
  let back = block_read ctx store.System.block_cache ~block:3 in
  Alcotest.(check string) "stack works under Verified placement" "verified-path"
    (Bytes.sub_string back 0 13)

let test_placement_user_domain () =
  let sys = System.create ~seed:0xBEEF ~key_bits:384 () in
  let k = System.kernel sys in
  let sdom = System.new_domain sys "storage" in
  let store = System.setup_store sys ~placement:(System.User sdom) () in
  Alcotest.(check int) "cache lives in the user domain" sdom.Domain.id
    store.System.block_cache.Instance.domain;
  Alcotest.(check int) "driver stays certified in the kernel"
    (Kernel.kernel_domain k).Domain.id store.System.blk_driver.Instance.domain;
  (* a client in a third domain drives the stack across domains *)
  let cdom = System.new_domain sys "client" in
  let cache = Kernel.bind k cdom "/store/cache0" in
  switch_to k cdom;
  let cctx = Kernel.ctx k cdom in
  block_write cctx cache ~block:8 "cross-domain";
  let back = block_read cctx cache ~block:8 in
  switch_to k (Kernel.kernel_domain k);
  Alcotest.(check string) "round-trip across three domains" "cross-domain"
    (Bytes.sub_string back 0 12)

(* --- interposition ------------------------------------------------------ *)

let test_interpose_on_block_path () =
  let _sys, k, store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let api = Kernel.api k in
  (* interpose on the partition before the cache first resolves it *)
  let target = Kernel.bind k kdom "/store/part0" in
  let agent = Interpose.wrap api kdom ~target () in
  (match Interpose.attach api ~path:"/store/part0" ~agent with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  block_write ctx store.System.block_cache ~block:21 "spied-on";
  ignore (block_flush ctx store.System.block_cache);
  (match Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"calls" [] with
  | Value.Int calls ->
    Alcotest.(check bool) "agent saw the write-back traffic" true (calls > 0)
  | v -> Alcotest.failf "monitor returned %s" (Value.to_string v));
  Alcotest.(check string) "data still reaches the media through the agent"
    "spied-on" (media_prefix k ~block:21 8)

(* --- channel-backed block path ------------------------------------------ *)

let test_storechan_cross_domain () =
  let sys, k, _store = fixture () in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let server = Storechan.create_server api kdom ~target:"/store/cache0" () in
  let cdom = System.new_domain sys "blkclient" in
  let proxy = Storechan.connect server ~name:"proxy0" ~client:cdom () in
  Alcotest.(check int) "proxy lives in the client domain" cdom.Domain.id
    proxy.Instance.domain;
  switch_to k cdom;
  let cctx = Kernel.ctx k cdom in
  block_write cctx proxy ~block:44 "over-the-ring";
  let back = block_read cctx proxy ~block:44 in
  Alcotest.(check string) "round-trip over request/response rings"
    "over-the-ring"
    (Bytes.sub_string back 0 13);
  ignore (block_flush cctx proxy);
  switch_to k kdom;
  Alcotest.(check string) "flush over the ring reached the media"
    "over-the-ring" (media_prefix k ~block:44 13);
  Alcotest.(check bool) "server counted the requests" true
    (Storechan.served server >= 3)

(* --- kv over the network ------------------------------------------------ *)

let test_kv_over_net () =
  let sys, k, _store = fixture () in
  let net =
    System.setup_networking sys ~placement:System.Certified ~addr:42
      ~loopback:true ()
  in
  let nsc, _svc = System.channel_net sys net () in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let kv = Kv.create api kdom ~name:"kv-net" ~log:"/store/log0" () in
  (match Kv.serve api kdom ~kv ~net:nsc ~port:70 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "serve: %s" (Oerror.to_string e));
  let cdom = System.new_domain sys "kvclient" in
  let cchan =
    match Netstack_chan.bind nsc ~port:71 ~owner:cdom ~mode:Chan.Poll () with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let txh = Netstack_chan.attach_tx nsc ~producer:cdom in
  let pump () =
    ignore (Netstack_chan.drain_tx nsc);
    Kernel.step k ~ticks:8 ()
  in
  let request ~op ~key value =
    switch_to k cdom;
    let cctx = Kernel.ctx k cdom in
    let req = Storewire.Kvmsg.build_req cctx ~op ~key:(Bytes.of_string key) value in
    Alcotest.(check bool) "request enqueued" true
      (Netstack_chan.submit txh cctx ~dst:42 ~sport:71 ~dport:70 req);
    switch_to k kdom;
    pump ();
    switch_to k cdom;
    let cctx = Kernel.ctx k cdom in
    let resp =
      match Chan.recv_batch cchan () with
      | [ m ] -> (
        match Netwire.Delivery.parse cctx m with
        | Ok d -> (
          match Storewire.Kvmsg.parse_resp cctx d.Netwire.Delivery.payload with
          | Ok r -> r
          | Error e -> Alcotest.failf "bad kv response: %s" e)
        | Error e -> Alcotest.failf "bad delivery: %s" e)
      | ms -> Alcotest.failf "expected one response, got %d" (List.length ms)
    in
    switch_to k kdom;
    resp
  in
  let r = request ~op:Storewire.kv_put ~key:"color" (Bytes.of_string "teal") in
  Alcotest.(check int) "put ok" Storewire.Kvmsg.status_ok r.Storewire.Kvmsg.status;
  let r = request ~op:Storewire.kv_get ~key:"color" Bytes.empty in
  Alcotest.(check int) "get ok" Storewire.Kvmsg.status_ok r.Storewire.Kvmsg.status;
  Alcotest.(check string) "value over the wire" "teal"
    (Bytes.to_string r.Storewire.Kvmsg.payload);
  let r = request ~op:Storewire.kv_get ~key:"absent" Bytes.empty in
  Alcotest.(check int) "missing key reported" Storewire.Kvmsg.status_not_found
    r.Storewire.Kvmsg.status;
  let r = request ~op:Storewire.kv_del ~key:"color" Bytes.empty in
  Alcotest.(check int) "del ok" Storewire.Kvmsg.status_ok r.Storewire.Kvmsg.status;
  let r = request ~op:Storewire.kv_get ~key:"color" Bytes.empty in
  Alcotest.(check int) "deleted over the wire" Storewire.Kvmsg.status_not_found
    r.Storewire.Kvmsg.status;
  (* the workload journals device + cache events for replay *)
  let ctx = Kernel.ctx k kdom in
  ignore (Invoke.call_exn ctx kv ~iface:"kv" ~meth:"flush" []);
  let counters = (Clock.snapshot (Kernel.clock k)).Clock.counts in
  let count name =
    match List.assoc_opt name counters with Some n -> n | None -> 0
  in
  Alcotest.(check bool) "block issues counted" true (count "blk_issue" > 0);
  Alcotest.(check bool) "cache flush counted" true (count "cache_flush" > 0)

(* --- replay ------------------------------------------------------------- *)

(* every storage component publishes its counters at /stats/store.<name>,
   labeled per kind, queryable one value at a time *)
let test_store_stats_published () =
  let _sys, k, store = fixture ~cache_capacity:4 () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  (* move some counters: one write through the cache, then flush *)
  let cache = Kernel.bind k kdom "/store/cache0" in
  block_write ctx cache ~block:0 "stats probe";
  ignore (block_flush ctx cache);
  let stats = Kernel.bind k kdom "/stats/store.cache0" in
  (match Invoke.call_exn ctx stats ~iface:"stats.store" ~meth:"snapshot" [] with
  | Value.Str s ->
    Alcotest.(check bool) "snapshot names the component" true
      (String.length s >= 12 && String.sub s 0 12 = "store.cache0");
    let has_label l =
      List.exists
        (fun line ->
          String.length line > 2
          && String.trim line <> ""
          && String.length (String.trim line) >= String.length l
          && String.sub (String.trim line) 0 (String.length l) = l)
        (String.split_on_char '\n' s)
    in
    Alcotest.(check bool) "snapshot labels the counters" true
      (has_label "hits" && has_label "writebacks" && has_label "capacity")
  | v -> Alcotest.failf "snapshot returned %s" (Value.to_string v));
  (match
     Invoke.call_exn ctx stats ~iface:"stats.store" ~meth:"value"
       [ Value.Str "capacity" ]
   with
  | Value.Int n -> Alcotest.(check int) "cache capacity published" 4 n
  | v -> Alcotest.failf "value returned %s" (Value.to_string v));
  (match
     Invoke.call_exn ctx stats ~iface:"stats.store" ~meth:"value"
       [ Value.Str "writebacks" ]
   with
  | Value.Int n -> Alcotest.(check bool) "flush counted a writeback" true (n >= 1)
  | v -> Alcotest.failf "value returned %s" (Value.to_string v));
  (* the driver's publication carries its own labels *)
  let drv = Kernel.bind k kdom "/stats/store.blkdrv" in
  (match
     Invoke.call_exn ctx drv ~iface:"stats.store" ~meth:"value"
       [ Value.Str "blk_writes" ]
   with
  | Value.Int n -> Alcotest.(check bool) "driver write counted" true (n >= 1)
  | v -> Alcotest.failf "value returned %s" (Value.to_string v));
  ignore store

let test_kv_scenario_replays () =
  match Replay.record "kv" with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    Alcotest.(check bool) "journal non-empty" true (String.length r.Replay.journal > 0);
    match Replay.replay r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "kv scenario diverged: %s" e)

let () =
  Alcotest.run "store"
    [
      ( "driver",
        [
          Alcotest.test_case "dma round-trip" `Quick test_driver_roundtrip;
          Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
        ] );
      ( "stack",
        [
          Alcotest.test_case "factory partition window" `Quick
            test_factory_partition_window;
          Alcotest.test_case "cache eviction when full" `Quick
            test_cache_eviction_when_full;
          Alcotest.test_case "flush-on-detach durability" `Quick
            test_flush_on_detach_durability;
          Alcotest.test_case "cache size is the lower layer's" `Quick
            test_cache_size_transparent;
          Alcotest.test_case "log append + recover" `Quick test_log_append_recover;
          Alcotest.test_case "kv put/get/del + recover" `Quick
            test_kv_local_recover;
        ] );
      ( "composition",
        [
          Alcotest.test_case "verified placement" `Quick test_placement_verified;
          Alcotest.test_case "user-domain placement" `Quick
            test_placement_user_domain;
          Alcotest.test_case "interpose on the block path" `Quick
            test_interpose_on_block_path;
          Alcotest.test_case "stats published at /stats/store" `Quick
            test_store_stats_published;
          Alcotest.test_case "channel-backed proxy" `Quick
            test_storechan_cross_domain;
        ] );
      ( "workload",
        [
          Alcotest.test_case "kv over the net path" `Quick test_kv_over_net;
          Alcotest.test_case "kv scenario replays" `Quick test_kv_scenario_replays;
        ] );
    ]
