(* Tests for Pm_query: the causal fold from a traced journal into
   per-request span trees with per-layer attribution and critical-path
   extraction, its fail-soft behaviour on damaged histories, the
   state-at-cycle folds over the structural archive, and the
   /nucleus/query service that exports both cross-domain. *)

open Paramecium

let contains s sub =
  let slen = String.length sub in
  let rec go i =
    i + slen <= String.length s && (String.sub s i slen = sub || go (i + 1))
  in
  go 0

(* Run [f] with tracing on and a fresh rid mint, restoring the global
   trace register after — the tests share one process. *)
let with_tracing f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

let record j ~kind ~at ?(domain = 1) ?(info = 0) ?(detail = "") () =
  Journal.record j ~kind ~domain ~at ~info ~detail

(* --- the causal fold ----------------------------------------------------- *)

(* One hand-built request: 120 cycles end to end, a kv span holding a
   log span, a 50-cycle device wait inside the log span, one note.

       100 begin .. 110 [kv .. 120 [log .. 130 dma 180 .. 190] .. 200] .. 220 end

   Attribution must telescope exactly: net 30 (outside kv), kv 20
   (90 inclusive - 70 log), log 20 (70 - 50 media), media 50. *)
let build_request j =
  let rid = Journal.req_begin j ~domain:1 ~at:100 ~detail:"get k" in
  record j ~kind:Journal.Span_enter ~at:110 ~detail:"kv" ();
  record j ~kind:Journal.Trace_note ~at:112 ~detail:"cache miss k" ();
  record j ~kind:Journal.Span_enter ~at:120 ~detail:"log" ();
  record j ~kind:Journal.Blk_issue ~at:130 ~info:7 ~domain:0 ();
  record j ~kind:Journal.Blk_complete ~at:180 ~info:7 ~domain:0 ();
  record j ~kind:Journal.Span_exit ~at:190 ~detail:"log" ();
  record j ~kind:Journal.Span_exit ~at:200 ~detail:"kv" ();
  Journal.req_end j ~domain:1 ~at:220 rid;
  rid

let test_fold_builds_span_tree () =
  with_tracing (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      let rid = build_request j in
      match Query.fold ~complete:true (Journal.history j) with
      | Error e -> Alcotest.fail e
      | Ok [ r ] ->
        Alcotest.(check int) "rid" rid r.Query.rid;
        Alcotest.(check string) "label is the ingress detail" "get k"
          r.Query.label;
        Alcotest.(check int) "duration" 120 (Query.duration r);
        (match r.Query.spans with
        | [ kv ] ->
          Alcotest.(check string) "root span" "kv" kv.Query.layer;
          (match kv.Query.children with
          | [ lg ] ->
            Alcotest.(check string) "nested span" "log" lg.Query.layer;
            Alcotest.(check int) "nested duration" 70 (Query.span_duration lg)
          | kids ->
            Alcotest.failf "expected one kv child, got %d" (List.length kids))
        | spans ->
          Alcotest.failf "expected one top span, got %d" (List.length spans));
        Alcotest.(check bool) "note kept with its cycle" true
          (List.exists
             (fun (at, d, _) -> at = 112 && d = "cache miss k")
             r.Query.notes);
        (match r.Query.media with
        | [ m ] ->
          Alcotest.(check int) "media block" 7 m.Query.block;
          Alcotest.(check int) "media wait" 50
            (m.Query.complete_at - m.Query.issue_at)
        | ms -> Alcotest.failf "expected one media wait, got %d" (List.length ms));
        let attr = Query.attribution r in
        let cycles l = Option.value ~default:0 (List.assoc_opt l attr) in
        Alcotest.(check int) "net exclusive" 30 (cycles "net");
        Alcotest.(check int) "kv exclusive" 20 (cycles "kv");
        Alcotest.(check int) "log exclusive" 20 (cycles "log");
        Alcotest.(check int) "media wait attributed" 50 (cycles "media");
        Alcotest.(check int) "attribution telescopes to the duration"
          (Query.duration r)
          (List.fold_left (fun a (_, n) -> a + n) 0 attr);
        Alcotest.(check (list string))
          "critical path descends to the device"
          [ "kv"; "log"; "media" ] (Query.critical_path r);
        Alcotest.(check bool) "one-line rendering mentions the label" true
          (contains (Query.request_line r) "get k")
      | Ok reqs ->
        Alcotest.failf "expected one request, got %d" (List.length reqs))

let test_fold_fails_soft () =
  (* a truncated history is refused by name, never an exception *)
  (match Query.fold ~complete:false [] with
  | Error e ->
    Alcotest.(check bool) "incomplete history named" true
      (contains e "query: incomplete history")
  | Ok _ -> Alcotest.fail "fold accepted an incomplete history");
  (* a span exit with no matching enter *)
  with_tracing (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      let rid = Journal.req_begin j ~domain:1 ~at:10 ~detail:"r" in
      record j ~kind:Journal.Span_exit ~at:20 ~detail:"kv" ();
      Journal.req_end j ~domain:1 ~at:30 rid;
      (match Query.fold ~complete:true (Journal.history j) with
      | Error e ->
        Alcotest.(check bool) "unbalanced exit named" true
          (contains e "unbalanced span")
      | Ok _ -> Alcotest.fail "fold accepted an exit with no enter"));
  (* a request that ends while a span is still open *)
  with_tracing (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      let rid = Journal.req_begin j ~domain:1 ~at:10 ~detail:"r" in
      record j ~kind:Journal.Span_enter ~at:20 ~detail:"kv" ();
      Journal.req_end j ~domain:1 ~at:30 rid;
      match Query.fold ~complete:true (Journal.history j) with
      | Error e ->
        Alcotest.(check bool) "open span at req-end named" true
          (contains e "ended inside span")
      | Ok _ -> Alcotest.fail "fold accepted a request ending inside a span")

let test_fold_ignores_out_of_window_work () =
  with_tracing (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      (* traced work with no surrounding request window is ignored *)
      Trace.set_current 99;
      record j ~kind:Journal.Span_enter ~at:5 ~detail:"kv" ();
      record j ~kind:Journal.Span_exit ~at:6 ~detail:"kv" ();
      Trace.clear ();
      (* a request still open at the end of the stream is dropped *)
      ignore (Journal.req_begin j ~domain:1 ~at:10 ~detail:"unfinished");
      match Query.fold ~complete:true (Journal.history j) with
      | Ok [] -> ()
      | Ok reqs ->
        Alcotest.failf "expected no requests, got %d" (List.length reqs)
      | Error e -> Alcotest.fail e)

let test_slowest_and_layer_totals () =
  with_tracing (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      let r1 = Journal.req_begin j ~domain:1 ~at:0 ~detail:"fast" in
      Journal.req_end j ~domain:1 ~at:10 r1;
      let r2 = Journal.req_begin j ~domain:1 ~at:20 ~detail:"slow" in
      Journal.req_end j ~domain:1 ~at:120 r2;
      match Query.fold ~complete:true (Journal.history j) with
      | Error e -> Alcotest.fail e
      | Ok reqs ->
        (match Query.slowest 1 reqs with
        | [ r ] -> Alcotest.(check string) "slowest first" "slow" r.Query.label
        | l -> Alcotest.failf "slowest 1 returned %d" (List.length l));
        let totals = Query.layer_totals reqs in
        Alcotest.(check int) "all cycles are net cycles here" 110
          (Option.value ~default:0 (List.assoc_opt "net" totals));
        Alcotest.(check bool) "totals render" true
          (String.length (Query.layer_totals_to_text reqs) > 0))

(* --- state-at-cycle over the structural archive -------------------------- *)

let test_state_at_cycle () =
  let j = Journal.create () in
  (* frame 5: shared into 2 then 3, released by 2 *)
  record j ~kind:Journal.Page_share ~at:10 ~domain:2 ~info:5 ();
  record j ~kind:Journal.Page_share ~at:20 ~domain:3 ~info:5 ();
  record j ~kind:Journal.Page_unshare ~at:30 ~domain:2 ~info:5 ();
  (* /svc/a: bound to 4, interposed by 9, unbound *)
  record j ~kind:Journal.Bind ~at:10 ~domain:0 ~info:4 ~detail:"/svc/a" ();
  record j ~kind:Journal.Interpose ~at:20 ~domain:0 ~info:9
    ~detail:"/svc/a: 4 -> 9" ();
  record j ~kind:Journal.Unbind ~at:30 ~domain:0 ~info:9 ~detail:"/svc/a" ();
  (* component comp: installed for domain 2, later detached *)
  record j ~kind:Journal.Install ~at:10 ~domain:2 ~info:7 ~detail:"comp @ /x" ();
  record j ~kind:Journal.Detach ~at:30 ~domain:2 ~info:7 ~detail:"comp @ /x" ();
  let evs = Journal.structural j in
  Alcotest.(check (list int)) "both domains held frame 5 mid-run" [ 2; 3 ]
    (Query.frame_holders evs ~frame:5 ~at:25);
  Alcotest.(check (list int)) "only 3 after the release" [ 3 ]
    (Query.frame_holders evs ~frame:5 ~at:35);
  Alcotest.(check (list int)) "nobody before the first share" []
    (Query.frame_holders evs ~frame:5 ~at:5);
  Alcotest.(check (option int)) "original binding" (Some 4)
    (Query.bound_at evs ~path:"/svc/a" ~at:15);
  Alcotest.(check (option int)) "interposition swaps the handle" (Some 9)
    (Query.bound_at evs ~path:"/svc/a" ~at:25);
  Alcotest.(check (option int)) "unbound at the end" None
    (Query.bound_at evs ~path:"/svc/a" ~at:35);
  Alcotest.(check (option int)) "unknown path" None
    (Query.bound_at evs ~path:"/nope" ~at:25);
  Alcotest.(check (option int)) "install records the owner" (Some 2)
    (Query.owner_of evs ~name:"comp" ~at:20);
  Alcotest.(check (option int)) "detach forgets it" None
    (Query.owner_of evs ~name:"comp" ~at:40)

(* --- the /nucleus/query service ------------------------------------------ *)

let test_query_service_cross_domain () =
  let sys = System.create () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "inspector" in
  let svc = Kernel.bind k udom "/nucleus/query" in
  Alcotest.(check bool) "cross-domain bind is a proxy" true (Proxy.is_proxy svc);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let ctx = Kernel.ctx k udom in
  (* causal queries refuse a tail-mode (incomplete) journal by name *)
  (match Invoke.call ctx svc ~iface:"query" ~meth:"layers" [] with
  | Error (Oerror.Fault m) ->
    Alcotest.(check bool) "fault names the incomplete history" true
      (contains m "incomplete")
  | Ok _ -> Alcotest.fail "layers() answered over a tail-mode journal"
  | Error _ -> Alcotest.fail "layers() failed for the wrong reason");
  (* time-travel queries fold the structural archive and work in any
     mode: boot bound the journal service, so ask who holds that name *)
  let now = Clock.now (System.clock sys) in
  (match
     Invoke.call_exn ctx svc ~iface:"query" ~meth:"bound_at"
       [ Value.Str "/nucleus/journal"; Value.Int now ]
   with
  | Value.Int h -> Alcotest.(check bool) "a live handle answers" true (h >= 0)
  | _ -> Alcotest.fail "bound_at()");
  match
    Invoke.call ctx svc ~iface:"query" ~meth:"bound_at"
      [ Value.Str "/no/such/path"; Value.Int now ]
  with
  | Error (Oerror.Fault m) ->
    Alcotest.(check bool) "missing binding faults by name" true
      (contains m "nothing bound")
  | Ok _ -> Alcotest.fail "bound_at() invented a binding"
  | Error _ -> Alcotest.fail "bound_at() failed for the wrong reason"

let () =
  Alcotest.run "pm_query"
    [
      ( "fold",
        [
          Alcotest.test_case "span tree, attribution, critical path" `Quick
            test_fold_builds_span_tree;
          Alcotest.test_case "fails soft on damaged histories" `Quick
            test_fold_fails_soft;
          Alcotest.test_case "ignores out-of-window work" `Quick
            test_fold_ignores_out_of_window_work;
          Alcotest.test_case "slowest and layer totals" `Quick
            test_slowest_and_layer_totals;
        ] );
      ( "state-at-cycle",
        [ Alcotest.test_case "frame / binding / owner" `Quick test_state_at_cycle ] );
      ( "service",
        [
          Alcotest.test_case "cross-domain /nucleus/query" `Quick
            test_query_service_cross_domain;
        ] );
    ]
