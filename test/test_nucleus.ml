(* Tests for the nucleus: domains, event service, memory service,
   proxies, directory service, certification service, loader, kernel. *)

open Paramecium

let value = Alcotest.testable Value.pp Value.equal

(* a system with unit costs so cycle arithmetic is easy to reason about *)
let sys_fixture () = System.create ~costs:Cost.unit_costs ~key_bits:384 ()

let kernel_fixture () =
  let sys = sys_fixture () in
  System.kernel sys

(* a counter component usable as a loadable image *)
let counter_construct (api : Api.t) (dom : Domain.t) =
  let state = ref 0 in
  let iface =
    Iface.make ~name:"counter"
      [
        Iface.meth ~name:"incr" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit
          (fun _ctx -> function
            | [ Value.Int by ] ->
              state := !state + by;
              Ok Value.Unit
            | _ -> Error (Oerror.Type_error "incr(int)"));
        Iface.meth ~name:"get" ~args:[] ~ret:Vtype.Tint (fun _ctx -> function
          | [] -> Ok (Value.Int !state)
          | _ -> Error (Oerror.Type_error "get()"));
      ]
  in
  Instance.create api.Api.registry ~class_name:"test.counter" ~domain:dom.Domain.id
    [ iface ]

let counter_image ?(name = "counter") ?(type_safe = true) () =
  Images.image ~name ~size:2048 ~author:"kernel-team" ~type_safe counter_construct

(* --- events ------------------------------------------------------------- *)

let test_events_callbacks () =
  let k = kernel_fixture () in
  let ev = Kernel.events k in
  let kdom = Kernel.kernel_domain k in
  let seen = ref [] in
  let id1 = Events.register ev (Events.Irq 3) ~domain:kdom (fun arg -> seen := ("a", arg) :: !seen) in
  let _id2 = Events.register ev (Events.Irq 3) ~domain:kdom (fun arg -> seen := ("b", arg) :: !seen) in
  Machine.raise_irq (Kernel.machine k) 3;
  Alcotest.(check (list (pair string int)))
    "both callbacks, registration order"
    [ ("a", 0); ("b", 0) ]
    (List.rev !seen);
  Alcotest.(check int) "deliveries" 2 (Events.deliveries ev);
  Events.unregister ev id1;
  Alcotest.(check int) "one left" 1 (Events.callbacks ev (Events.Irq 3));
  Machine.raise_irq (Kernel.machine k) 3;
  Alcotest.(check int) "only b fires" 3 (List.length !seen)

let test_events_trap_dispatch () =
  let k = kernel_fixture () in
  let ev = Kernel.events k in
  let kdom = Kernel.kernel_domain k in
  let arg_seen = ref (-1) in
  ignore (Events.register ev (Events.Trap 5) ~domain:kdom (fun arg -> arg_seen := arg));
  ignore (Machine.raise_trap (Kernel.machine k) 5 77);
  Alcotest.(check int) "trap argument" 77 !arg_seen

let test_events_cross_domain_delivery_switches () =
  let k = kernel_fixture () in
  let ev = Kernel.events k in
  let udom = Kernel.create_domain k ~name:"u" () in
  let observed = ref (-1) in
  ignore
    (Events.register ev (Events.Irq 4) ~domain:udom (fun _ ->
         observed := Mmu.current_context (Machine.mmu (Kernel.machine k))));
  let before = Mmu.current_context (Machine.mmu (Kernel.machine k)) in
  Machine.raise_irq (Kernel.machine k) 4;
  Alcotest.(check int) "ran in callback's domain" udom.Domain.id !observed;
  Alcotest.(check int) "restored afterwards" before
    (Mmu.current_context (Machine.mmu (Kernel.machine k)))

let test_events_popup_redirection () =
  let k = kernel_fixture () in
  let ev = Kernel.events k in
  let kdom = Kernel.kernel_domain k in
  let sched = Kernel.sched k in
  let ran = ref 0 in
  ignore
    (Events.register_popup ev (Events.Irq 6) ~domain:kdom ~sched (fun _ -> incr ran));
  let popups_before = Scheduler.stats sched `Popups in
  Machine.raise_irq (Kernel.machine k) 6;
  Alcotest.(check int) "ran as proto-thread" 1 !ran;
  Alcotest.(check int) "popup counted" (popups_before + 1) (Scheduler.stats sched `Popups)

(* --- vmem ----------------------------------------------------------------- *)

let test_vmem_alloc_free () =
  let k = kernel_fixture () in
  let vm = Kernel.vmem k in
  let dom = Kernel.create_domain k ~name:"u" () in
  let before = Vmem.pages_of vm dom in
  let vaddr = Vmem.alloc_pages vm dom ~count:3 ~sharing:Vmem.Exclusive in
  Alcotest.(check int) "three pages" (before + 3) (Vmem.pages_of vm dom);
  (* pages are zeroed and writable *)
  Machine.write8 (Kernel.machine k) dom.Domain.id vaddr 0x42;
  Alcotest.(check int) "write/read" 0x42 (Machine.read8 (Kernel.machine k) dom.Domain.id vaddr);
  Vmem.free_pages vm dom ~vaddr ~count:3;
  Alcotest.(check int) "freed" before (Vmem.pages_of vm dom);
  (match Vmem.free_pages vm dom ~vaddr ~count:1 with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "double free rejected")

let test_vmem_sharing () =
  let k = kernel_fixture () in
  let vm = Kernel.vmem k in
  let a = Kernel.create_domain k ~name:"a" () in
  let b = Kernel.create_domain k ~name:"b" () in
  let va = Vmem.alloc_pages vm a ~count:1 ~sharing:Vmem.Shared in
  let vb = Vmem.map_shared vm ~from_dom:a ~vaddr:va ~count:1 ~into:b ~prot:Mmu.Read_only in
  Machine.write8 (Kernel.machine k) a.Domain.id va 0x7E;
  Alcotest.(check int) "b sees a's write" 0x7E
    (Machine.read8 (Kernel.machine k) b.Domain.id vb);
  (* read-only mapping blocks writes *)
  (match Machine.write8 (Kernel.machine k) b.Domain.id vb 1 with
  | exception Machine.Fatal_fault { Mmu.reason = Mmu.Protection; _ } -> ()
  | _ -> Alcotest.fail "read-only shared mapping must block writes");
  (* freeing a's page keeps b's alive through refcounting *)
  Vmem.free_pages vm a ~vaddr:va ~count:1;
  Alcotest.(check int) "refcount keeps frame" 0x7E
    (Machine.read8 (Kernel.machine k) b.Domain.id vb)

let test_vmem_exclusive_not_shareable () =
  let k = kernel_fixture () in
  let vm = Kernel.vmem k in
  let a = Kernel.create_domain k ~name:"a" () in
  let b = Kernel.create_domain k ~name:"b" () in
  let va = Vmem.alloc_pages vm a ~count:1 ~sharing:Vmem.Exclusive in
  (match Vmem.map_shared vm ~from_dom:a ~vaddr:va ~count:1 ~into:b ~prot:Mmu.Read_only with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "exclusive pages must not be shareable")

let test_vmem_fault_callbacks () =
  let k = kernel_fixture () in
  let vm = Kernel.vmem k in
  let dom = Kernel.create_domain k ~name:"u" () in
  let vaddr = Vmem.alloc_pages vm dom ~count:1 ~sharing:Vmem.Exclusive in
  Vmem.set_prot vm dom ~vaddr Mmu.Read_only;
  let faults = ref 0 in
  Vmem.set_fault_callback vm dom ~vaddr (fun fault ->
      incr faults;
      (* resolve by upgrading the protection *)
      Vmem.set_prot vm dom ~vaddr:fault.Mmu.vaddr Mmu.Read_write;
      true);
  Machine.write8 (Kernel.machine k) dom.Domain.id vaddr 9;
  Alcotest.(check int) "one fault resolved" 1 !faults;
  Alcotest.(check int) "write landed" 9 (Machine.read8 (Kernel.machine k) dom.Domain.id vaddr);
  Vmem.clear_fault_callback vm dom ~vaddr;
  Vmem.set_prot vm dom ~vaddr Mmu.No_access;
  (match Machine.read8 (Kernel.machine k) dom.Domain.id vaddr with
  | exception Machine.Fatal_fault _ -> ()
  | _ -> Alcotest.fail "cleared callback must not resolve")

let test_vmem_phys_of () =
  let k = kernel_fixture () in
  let vm = Kernel.vmem k in
  let dom = Kernel.create_domain k ~name:"u" () in
  let vaddr = Vmem.alloc_pages vm dom ~count:1 ~sharing:Vmem.Exclusive in
  let phys = Vmem.phys_of vm dom ~vaddr:(vaddr + 17) in
  Machine.write8 (Kernel.machine k) dom.Domain.id (vaddr + 17) 0x3C;
  Alcotest.(check int) "phys address agrees" 0x3C
    (Physmem.read8 (Machine.phys (Kernel.machine k)) phys);
  (match Vmem.phys_of vm dom ~vaddr:0 with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "unmapped phys_of rejected")

let test_vmem_io_grants () =
  let k = kernel_fixture () in
  let vm = Kernel.vmem k in
  let kdom = Kernel.kernel_domain k in
  let dom = Kernel.create_domain k ~name:"drv" () in
  let g = Vmem.alloc_io vm kdom ~device:"console" ~sharing:Vmem.Shared in
  Alcotest.(check int) "console status via grant" 1 (Vmem.io_read vm g ~reg:1);
  (* a second shared grant is fine; exclusive then refused *)
  let g2 = Vmem.alloc_io vm dom ~device:"console" ~sharing:Vmem.Shared in
  (match Vmem.alloc_io vm dom ~device:"console" ~sharing:Vmem.Exclusive with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "exclusive grant over existing grants refused");
  (* grant is checked against the running context *)
  (match Vmem.io_read vm g2 ~reg:1 with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "grant for another domain must be refused");
  Vmem.release_io vm g;
  (match Vmem.io_read vm g ~reg:1 with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "released grant must be refused");
  (match Vmem.alloc_io vm kdom ~device:"gpu" ~sharing:Vmem.Shared with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "unknown device refused")

(* --- directory + proxies --------------------------------------------------- *)

let test_directory_register_bind_same_domain () =
  let k = kernel_fixture () in
  let api = Kernel.api k in
  let kdom = Kernel.kernel_domain k in
  let obj = counter_construct api kdom in
  Kernel.register_at k "/services/counter" obj;
  let bound = Kernel.bind k kdom "/services/counter" in
  Alcotest.(check bool) "same instance, no proxy" true (bound == obj)

let test_directory_bind_cross_domain_proxies () =
  let k = kernel_fixture () in
  let api = Kernel.api k in
  let kdom = Kernel.kernel_domain k in
  let udom = Kernel.create_domain k ~name:"u" () in
  let obj = counter_construct api kdom in
  Kernel.register_at k "/services/counter" obj;
  let proxy1 = Kernel.bind k udom "/services/counter" in
  Alcotest.(check bool) "proxy, not the instance" true (proxy1 != obj);
  Alcotest.(check bool) "recognized as proxy" true (Proxy.is_proxy proxy1);
  let proxy2 = Kernel.bind k udom "/services/counter" in
  Alcotest.(check bool) "proxies cached" true (proxy1 == proxy2);
  (* the proxy works *)
  let ctx = Kernel.ctx k udom in
  ignore (Invoke.call_exn ctx proxy1 ~iface:"counter" ~meth:"incr" [ Value.Int 2 ]);
  Alcotest.check value "state behind proxy" (Value.Int 2)
    (Invoke.call_exn ctx proxy1 ~iface:"counter" ~meth:"get" []);
  (* costs: a cross-domain call was recorded *)
  Alcotest.(check bool) "cross-domain counted" true
    (Clock.counter (Kernel.clock k) "cross_domain_call" >= 2)

let test_proxy_rejects_wrong_domain () =
  let k = kernel_fixture () in
  let api = Kernel.api k in
  let kdom = Kernel.kernel_domain k in
  let u1 = Kernel.create_domain k ~name:"u1" () in
  let u2 = Kernel.create_domain k ~name:"u2" () in
  let obj = counter_construct api kdom in
  Kernel.register_at k "/svc/c" obj;
  let proxy = Kernel.bind k u1 "/svc/c" in
  (* calling u1's proxy from u2 is a protection violation *)
  (match Invoke.call (Kernel.ctx k u2) proxy ~iface:"counter" ~meth:"get" [] with
  | Error (Oerror.Domain_error _) -> ()
  | _ -> Alcotest.fail "proxy must reject foreign callers")

let test_proxy_charges_arg_mapping () =
  let k = kernel_fixture () in
  let api = Kernel.api k in
  let kdom = Kernel.kernel_domain k in
  let udom = Kernel.create_domain k ~name:"u" () in
  let echo =
    Iface.make ~name:"echo"
      [
        Iface.meth ~name:"echo" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tblob
          (fun _ctx -> function
            | [ (Value.Blob _ as b) ] -> Ok b
            | _ -> Error (Oerror.Type_error "echo(blob)"));
      ]
  in
  let obj =
    Instance.create api.Api.registry ~class_name:"test.echo" ~domain:kdom.Domain.id
      [ echo ]
  in
  Kernel.register_at k "/svc/e" obj;
  let proxy = Kernel.bind k udom "/svc/e" in
  let ctx = Kernel.ctx k udom in
  let clock = Kernel.clock k in
  (* the user code is actually running in its own MMU context *)
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let cost_of len =
    snd
      (Clock.measure clock (fun () ->
           ignore
             (Invoke.call_exn ctx proxy ~iface:"echo" ~meth:"echo"
                [ Value.Blob (Bytes.create len) ])))
  in
  let small = cost_of 4 and large = cost_of 400 in
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) kdom.Domain.id;
  (* unit costs: 400B blob maps 2*101 words vs 2*2 — the gap is the
     per-word argument/result mapping *)
  Alcotest.(check bool)
    (Printf.sprintf "argument words cost (small=%d large=%d)" small large)
    true
    (large >= small + 190);
  (* context switches happened on the way in and out *)
  Alcotest.(check bool) "switches counted" true
    (Clock.counter clock "context_switch" >= 4)

let test_directory_replace_interposition () =
  let k = kernel_fixture () in
  let api = Kernel.api k in
  let kdom = Kernel.kernel_domain k in
  let original = counter_construct api kdom in
  let decoy = counter_construct api kdom in
  Kernel.register_at k "/svc/c" original;
  (match Directory.replace (Kernel.directory k) (Path.of_string "/svc/c") decoy with
  | Ok old -> Alcotest.(check bool) "old returned" true (old == original)
  | Error _ -> Alcotest.fail "replace failed");
  let bound = Kernel.bind k kdom "/svc/c" in
  Alcotest.(check bool) "future binds get replacement" true (bound == decoy)

let test_directory_dangling_handle () =
  let k = kernel_fixture () in
  let dir = Kernel.directory k in
  ignore (Namespace.register (Directory.namespace dir) (Path.of_string "/ghost") 9999);
  (match
     Directory.bind dir (Kernel.ctx k (Kernel.kernel_domain k))
       ~view:(Kernel.kernel_domain k).Domain.view
       ~domain:(Kernel.kernel_domain k) (Path.of_string "/ghost")
   with
  | Error (Directory.Dangling 9999) -> ()
  | _ -> Alcotest.fail "expected dangling handle error")

let test_view_overrides_reach_binding () =
  let k = kernel_fixture () in
  let api = Kernel.api k in
  let kdom = Kernel.kernel_domain k in
  let real = counter_construct api kdom in
  let fake = counter_construct api kdom in
  Kernel.register_at k "/svc/net" real;
  Kernel.register_at k "/svc/fake" fake;
  (* domain created with an override: its /svc/net is the fake *)
  let udom =
    Kernel.create_domain k ~name:"u"
      ~overrides:[ (Path.of_string "/svc/net", Instance.handle fake) ]
      ()
  in
  let ctx = Kernel.ctx k udom in
  let bound = Kernel.bind k udom "/svc/net" in
  ignore (Invoke.call_exn ctx bound ~iface:"counter" ~meth:"incr" [ Value.Int 5 ]);
  Alcotest.check value "override routed to fake" (Value.Int 5)
    (Invoke.call_exn (Kernel.ctx k kdom) fake ~iface:"counter" ~meth:"get" []);
  Alcotest.check value "real untouched" (Value.Int 0)
    (Invoke.call_exn (Kernel.ctx k kdom) real ~iface:"counter" ~meth:"get" [])

(* --- certification service + loader ---------------------------------------- *)

let test_loader_requires_cert_for_kernel () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let loader = Kernel.loader k in
  Loader.publish loader (counter_image ());
  (match
     Loader.load loader ~name:"counter" ~into:(Kernel.kernel_domain k)
       ~at:(Path.of_string "/svc/c") ()
   with
  | Error (Loader.Not_certified _) -> ()
  | _ -> Alcotest.fail "uncertified kernel load must fail")

let test_loader_certified_kernel_load () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let inst = System.install_exn sys (counter_image ()) ~placement:System.Certified ~at:"/svc/c" in
  Alcotest.(check int) "lives in kernel domain" (Kernel.kernel_domain k).Domain.id
    inst.Instance.domain;
  Alcotest.(check int) "validation counted" 1 (Certsvc.validations (Kernel.certification k));
  (* registered and bindable *)
  let bound = Kernel.bind k (Kernel.kernel_domain k) "/svc/c" in
  Alcotest.(check bool) "bound" true (bound == inst)

let test_loader_rejects_tampered_image () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let image = counter_image () in
  let image, _ = Images.certify (System.authority sys) ~now:0 image in
  (* tamper after certification *)
  let image = { image with Loader.code = Codegen.tamper image.Loader.code ~at:100 } in
  let loader = Kernel.loader k in
  Loader.publish loader image;
  (match
     Loader.load loader ~name:"counter" ~into:(Kernel.kernel_domain k)
       ~at:(Path.of_string "/svc/c") ()
   with
  | Error (Loader.Validation_failed Validator.Digest_mismatch) -> ()
  | _ -> Alcotest.fail "tampered image must be rejected");
  Alcotest.(check int) "failure counted" 1 (Certsvc.failures (Kernel.certification k))

let test_loader_sandbox_escape () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let inst =
    System.install_exn sys
      (counter_image ~type_safe:false ())
      ~placement:System.Sandboxed ~at:"/svc/c"
  in
  Alcotest.(check bool) "wrapped" true (Sandbox.is_sandboxed inst);
  (* it still works, at a cost *)
  let ctx = Kernel.ctx k (Kernel.kernel_domain k) in
  ignore (Invoke.call_exn ctx inst ~iface:"counter" ~meth:"incr" [ Value.Int 1 ]);
  Alcotest.(check bool) "sfi crossing counted" true
    (Clock.counter (Kernel.clock k) "sfi_crossing" >= 1)

let test_loader_user_load_needs_no_cert () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "u" in
  let inst =
    System.install_exn sys
      (counter_image ~type_safe:false ())
      ~placement:(System.User udom) ~at:"/svc/c"
  in
  Alcotest.(check int) "in user domain" udom.Domain.id inst.Instance.domain;
  Alcotest.(check int) "no validation" 0 (Certsvc.validations (Kernel.certification k))

let test_loader_unload () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let inst = System.install_exn sys (counter_image ()) ~placement:System.Certified ~at:"/svc/c" in
  (match Loader.unload (Kernel.loader k) (Path.of_string "/svc/c") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unload failed: %s" (Loader.load_error_to_string e));
  Alcotest.(check bool) "revoked" true inst.Instance.revoked;
  (match Kernel.bind k (Kernel.kernel_domain k) "/svc/c" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "name must be gone")

let test_loader_unknown_and_name_conflicts () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let loader = Kernel.loader k in
  (match
     Loader.load loader ~name:"nonesuch" ~into:(Kernel.kernel_domain k)
       ~at:(Path.of_string "/x") ()
   with
  | Error (Loader.Unknown_component "nonesuch") -> ()
  | _ -> Alcotest.fail "unknown component");
  ignore (System.install_exn sys (counter_image ()) ~placement:System.Certified ~at:"/svc/c");
  (match System.install sys (counter_image ()) ~placement:System.Certified ~at:"/svc/c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "name conflict must fail")

let test_loader_online_certification () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let clock = Kernel.clock k in
  let before = Clock.now clock in
  (* type-safe: the compiler delegate accepts; its latency lands on the
     kernel's clock because certification runs on-line *)
  let inst =
    System.install_exn sys (counter_image ()) ~placement:System.Online_certified
      ~at:"/svc/online"
  in
  Alcotest.(check bool) "loaded into the kernel" true
    (inst.Instance.domain = (Kernel.kernel_domain k).Domain.id);
  Alcotest.(check bool) "delegate latency charged" true
    (Clock.now clock - before >= Policies.latency_compiler);
  Alcotest.(check int) "counted" 1 (Clock.counter clock "online_certification");
  (* a component nobody vouches for still fails *)
  let rogue =
    Images.image ~name:"rogue" ~size:512 ~author:"nobody" counter_construct
  in
  (match System.install sys rogue ~placement:System.Online_certified ~at:"/svc/r" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unvouched component must fail on-line too")

let test_certsvc_charges_load_time_costs () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let clock = Kernel.clock k in
  let small = counter_image ~name:"small" () in
  let big =
    Images.image ~name:"big" ~size:64_000 ~author:"kernel-team" ~type_safe:true
      counter_construct
  in
  let _, c_small =
    Clock.measure clock (fun () ->
        ignore (System.install_exn sys small ~placement:System.Certified ~at:"/svc/s"))
  in
  let _, c_big =
    Clock.measure clock (fun () ->
        ignore (System.install_exn sys big ~placement:System.Certified ~at:"/svc/b"))
  in
  Alcotest.(check bool)
    (Printf.sprintf "bigger component costs more to admit (%d vs %d)" c_small c_big)
    true
    (c_big > c_small + 32_000)

(* --- kernel composition ------------------------------------------------------ *)

let test_kernel_namespace_conventions () =
  let k = kernel_fixture () in
  let ns = Directory.namespace (Kernel.directory k) in
  List.iter
    (fun path ->
      Alcotest.(check bool) path true (Namespace.exists ns (Path.of_string path)))
    [ "/nucleus/events"; "/nucleus/memory"; "/nucleus/directory";
      "/nucleus/certification"; "/nucleus/trace"; "/nucleus/check";
      "/nucleus/kernel" ]

let test_kernel_service_objects () =
  let k = kernel_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let dir_obj = Kernel.bind k kdom "/nucleus/directory" in
  (* register + bind through the *object* interface *)
  let api = Kernel.api k in
  let counter = counter_construct api kdom in
  ignore
    (Invoke.call_exn ctx dir_obj ~iface:"directory" ~meth:"register"
       [ Value.Str "/svc/via-object"; Value.Int (Instance.handle counter) ]);
  (match
     Invoke.call_exn ctx dir_obj ~iface:"directory" ~meth:"bind"
       [ Value.Str "/svc/via-object" ]
   with
  | Value.Int h -> Alcotest.(check int) "handle" (Instance.handle counter) h
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (match
     Invoke.call_exn ctx dir_obj ~iface:"directory" ~meth:"list" [ Value.Str "/nucleus" ]
   with
  | Value.List entries ->
    Alcotest.(check int) "nine nucleus entries" 9 (List.length entries)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let test_kernel_memory_object_syscall () =
  (* user domain calling the kernel's memory object goes through a proxy:
     an object-model system call *)
  let k = kernel_fixture () in
  let udom = Kernel.create_domain k ~name:"u" () in
  let ctx = Kernel.ctx k udom in
  let mem_obj = Kernel.bind k udom "/nucleus/memory" in
  Alcotest.(check bool) "it is a proxy" true (Proxy.is_proxy mem_obj);
  let before = Clock.counter (Kernel.clock k) "cross_domain_call" in
  (match
     Invoke.call_exn ctx mem_obj ~iface:"memory" ~meth:"alloc_pages"
       [ Value.Int 2; Value.Bool false ]
   with
  | Value.Int vaddr ->
    Machine.write8 (Kernel.machine k) udom.Domain.id vaddr 5;
    Alcotest.(check int) "usable memory" 5
      (Machine.read8 (Kernel.machine k) udom.Domain.id vaddr)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  Alcotest.(check int) "syscall crossed domains" (before + 1)
    (Clock.counter (Kernel.clock k) "cross_domain_call")

let test_kernel_static_composition_sealed () =
  let k = kernel_fixture () in
  let kdom = Kernel.kernel_domain k in
  let nucleus_obj = Kernel.bind k kdom "/nucleus/kernel" in
  Alcotest.(check string) "class" "paramecium.nucleus" nucleus_obj.Instance.class_name;
  (* the composition exports the service interfaces *)
  Alcotest.(check (list string))
    "exports"
    [ "events"; "memory"; "directory"; "certification"; "trace"; "journal"; "query" ]
    (Instance.interface_names nucleus_obj)

let test_kernel_domain_listing () =
  let k = kernel_fixture () in
  let u1 = Kernel.create_domain k ~name:"u1" () in
  let _u2 = Kernel.create_domain k ~name:"u2" () in
  Alcotest.(check int) "three domains" 3 (List.length (Kernel.domains k));
  (match Kernel.domains k with
  | kd :: _ -> Alcotest.(check bool) "kernel first" true (Domain.is_kernel kd)
  | [] -> Alcotest.fail "no domains");
  Alcotest.(check bool) "domain_of_id" true (Kernel.domain_of_id k u1.Domain.id = Some u1);
  Alcotest.(check bool) "unknown id" true (Kernel.domain_of_id k 999 = None)

(* --- domain teardown ---------------------------------------------------- *)

let test_destroy_domain_reclaims_everything () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let m = Kernel.machine k in
  let free0 = Physmem.free_frames (Machine.phys m) in
  let dom = Kernel.create_domain k ~name:"doomed" () in
  (* give it memory, an object, a name, an event callback and an io grant *)
  let vaddr = Vmem.alloc_pages (Kernel.vmem k) dom ~count:3 ~sharing:Vmem.Exclusive in
  ignore vaddr;
  let obj = counter_construct (Kernel.api k) dom in
  Kernel.register_at k "/svc/doomed" obj;
  ignore
    (Events.register (Kernel.events k) (Events.Irq 5) ~domain:dom (fun _ -> ()));
  ignore (Vmem.alloc_io (Kernel.vmem k) dom ~device:"console" ~sharing:Vmem.Shared);
  (* a proxy held by the kernel domain *)
  let proxy = Kernel.bind k (Kernel.kernel_domain k) "/svc/doomed" in
  Kernel.destroy_domain k dom;
  Alcotest.(check bool) "dead" false dom.Domain.alive;
  (* all of the domain's frames come back; the one missing frame is the
     proxy's fault-hook page, which lives in the *kernel* (importer)
     domain and legitimately survives *)
  Alcotest.(check int) "frames reclaimed" (free0 - 1)
    (Physmem.free_frames (Machine.phys m));
  Alcotest.(check int) "no event callbacks left" 0
    (Events.callbacks (Kernel.events k) (Events.Irq 5));
  Alcotest.(check bool) "name gone" false
    (Namespace.exists (Directory.namespace (Kernel.directory k))
       (Path.of_string "/svc/doomed"));
  Alcotest.(check bool) "removed from listing" true
    (Kernel.domain_of_id k dom.Domain.id = None);
  (* the proxy now fails cleanly *)
  (match Invoke.call (Kernel.ctx k (Kernel.kernel_domain k)) proxy ~iface:"counter" ~meth:"get" [] with
  | Error Oerror.Revoked -> ()
  | _ -> Alcotest.fail "proxy to a dead domain must report Revoked");
  (* kernel still fully operational *)
  let d2 = Kernel.create_domain k ~name:"next" () in
  let v2 = Vmem.alloc_pages (Kernel.vmem k) d2 ~count:1 ~sharing:Vmem.Exclusive in
  Machine.write8 m d2.Domain.id v2 1;
  Alcotest.(check int) "new domain works" 1 (Machine.read8 m d2.Domain.id v2)

let test_destroy_domain_guards () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  (match Kernel.destroy_domain k (Kernel.kernel_domain k) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kernel domain must be indestructible");
  let dom = Kernel.create_domain k ~name:"once" () in
  Kernel.destroy_domain k dom;
  (match Kernel.destroy_domain k dom with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double destroy rejected")

let () =
  Alcotest.run "nucleus"
    [
      ( "events",
        [
          Alcotest.test_case "callbacks" `Quick test_events_callbacks;
          Alcotest.test_case "trap dispatch" `Quick test_events_trap_dispatch;
          Alcotest.test_case "cross-domain delivery" `Quick
            test_events_cross_domain_delivery_switches;
          Alcotest.test_case "popup redirection" `Quick test_events_popup_redirection;
        ] );
      ( "vmem",
        [
          Alcotest.test_case "alloc/free" `Quick test_vmem_alloc_free;
          Alcotest.test_case "sharing + refcount" `Quick test_vmem_sharing;
          Alcotest.test_case "exclusive not shareable" `Quick
            test_vmem_exclusive_not_shareable;
          Alcotest.test_case "fault callbacks" `Quick test_vmem_fault_callbacks;
          Alcotest.test_case "phys_of" `Quick test_vmem_phys_of;
          Alcotest.test_case "io grants" `Quick test_vmem_io_grants;
        ] );
      ( "directory",
        [
          Alcotest.test_case "same-domain bind" `Quick
            test_directory_register_bind_same_domain;
          Alcotest.test_case "cross-domain proxies" `Quick
            test_directory_bind_cross_domain_proxies;
          Alcotest.test_case "proxy domain check" `Quick test_proxy_rejects_wrong_domain;
          Alcotest.test_case "proxy arg-mapping cost" `Quick
            test_proxy_charges_arg_mapping;
          Alcotest.test_case "replace (interposition)" `Quick
            test_directory_replace_interposition;
          Alcotest.test_case "dangling handle" `Quick test_directory_dangling_handle;
          Alcotest.test_case "view overrides" `Quick test_view_overrides_reach_binding;
        ] );
      ( "loader",
        [
          Alcotest.test_case "kernel requires cert" `Quick
            test_loader_requires_cert_for_kernel;
          Alcotest.test_case "certified load" `Quick test_loader_certified_kernel_load;
          Alcotest.test_case "tampered image rejected" `Quick
            test_loader_rejects_tampered_image;
          Alcotest.test_case "sandbox escape" `Quick test_loader_sandbox_escape;
          Alcotest.test_case "user load" `Quick test_loader_user_load_needs_no_cert;
          Alcotest.test_case "unload" `Quick test_loader_unload;
          Alcotest.test_case "unknown/conflicts" `Quick
            test_loader_unknown_and_name_conflicts;
          Alcotest.test_case "online certification" `Quick
            test_loader_online_certification;
          Alcotest.test_case "load-time costs scale" `Quick
            test_certsvc_charges_load_time_costs;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "destroy domain" `Quick
            test_destroy_domain_reclaims_everything;
          Alcotest.test_case "destroy guards" `Quick test_destroy_domain_guards;
          Alcotest.test_case "namespace conventions" `Quick
            test_kernel_namespace_conventions;
          Alcotest.test_case "service objects" `Quick test_kernel_service_objects;
          Alcotest.test_case "memory syscall via proxy" `Quick
            test_kernel_memory_object_syscall;
          Alcotest.test_case "static composition" `Quick
            test_kernel_static_composition_sealed;
          Alcotest.test_case "domain listing" `Quick test_kernel_domain_listing;
        ] );
    ]
