(* Tests for the component toolbox: wire formats, allocator, network
   driver, protocol stack, RPC, interposing agents. *)

open Paramecium

let value = Alcotest.testable Value.pp Value.equal

let sys_fixture () = System.create ~key_bits:384 ()

let ctx_fixture () =
  let clock = Clock.create () in
  (clock, Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0)

(* --- codegen -------------------------------------------------------------- *)

let test_codegen () =
  let a = Codegen.synthesize ~name:"x" ~size:100 in
  let b = Codegen.synthesize ~name:"x" ~size:100 in
  let c = Codegen.synthesize ~name:"y" ~size:100 in
  Alcotest.(check int) "size" 100 (String.length a);
  Alcotest.(check bool) "deterministic" true (String.equal a b);
  Alcotest.(check bool) "name-dependent" false (String.equal a c);
  let t = Codegen.tamper a ~at:50 in
  Alcotest.(check bool) "tamper changes one byte" false (String.equal a t);
  Alcotest.(check int) "only one byte" 1
    (List.length
       (List.filter Fun.id (List.init 100 (fun i -> a.[i] <> t.[i]))))

(* --- wire ------------------------------------------------------------------ *)

let test_frame_round_trip () =
  let _, ctx = ctx_fixture () in
  let payload = Bytes.of_string "some payload" in
  let raw = Wire.Frame.build ctx ~dst:7 ~src:9 payload in
  (match Wire.Frame.parse ctx raw with
  | Ok { Wire.Frame.dst; src; payload = p } ->
    Alcotest.(check int) "dst" 7 dst;
    Alcotest.(check int) "src" 9 src;
    Alcotest.(check string) "payload" "some payload" (Bytes.to_string p)
  | Error e -> Alcotest.fail e)

let test_frame_detects_corruption () =
  let _, ctx = ctx_fixture () in
  let raw = Wire.Frame.build ctx ~dst:7 ~src:9 (Bytes.of_string "payload") in
  Bytes.set raw 8 'X';
  (match Wire.Frame.parse ctx raw with
  | Error "frame: bad fcs" -> ()
  | _ -> Alcotest.fail "corruption must be detected");
  (match Wire.Frame.parse ctx (Bytes.create 3) with
  | Error "frame: truncated" -> ()
  | _ -> Alcotest.fail "truncation must be detected");
  (match Wire.Frame.parse ctx (Bytes.create 32) with
  | Error "frame: bad length" -> ()
  | _ -> Alcotest.fail "length mismatch must be detected")

let test_net_round_trip_and_ttl () =
  let _, ctx = ctx_fixture () in
  let raw = Wire.Net.build ctx ~src:1 ~dst:2 ~ttl:5 ~proto:17 (Bytes.of_string "x") in
  (match Wire.Net.parse ctx raw with
  | Ok { Wire.Net.src = 1; dst = 2; ttl = 5; proto = 17; _ } -> ()
  | Ok _ -> Alcotest.fail "fields wrong"
  | Error e -> Alcotest.fail e);
  (match Wire.Net.decrement_ttl ctx raw with
  | Ok () ->
    (match Wire.Net.parse ctx raw with
    | Ok { Wire.Net.ttl = 4; _ } -> ()
    | _ -> Alcotest.fail "ttl not decremented or checksum broken")
  | Error e -> Alcotest.fail e);
  let dying = Wire.Net.build ctx ~src:1 ~dst:2 ~ttl:1 ~proto:17 Bytes.empty in
  (match Wire.Net.decrement_ttl ctx dying with
  | Error "net: ttl expired" -> ()
  | _ -> Alcotest.fail "ttl expiry must be caught")

let test_transport_round_trip () =
  let _, ctx = ctx_fixture () in
  let raw = Wire.Transport.build ctx ~sport:100 ~dport:200 (Bytes.of_string "data") in
  (match Wire.Transport.parse ctx raw with
  | Ok { Wire.Transport.sport = 100; dport = 200; payload } ->
    Alcotest.(check string) "payload" "data" (Bytes.to_string payload)
  | Ok _ -> Alcotest.fail "fields wrong"
  | Error e -> Alcotest.fail e);
  Bytes.set raw (Bytes.length raw - 1) '!';
  (match Wire.Transport.parse ctx raw with
  | Error "transport: bad checksum" -> ()
  | _ -> Alcotest.fail "payload corruption must be detected")

let test_net_error_paths () =
  let _, ctx = ctx_fixture () in
  (match Wire.Net.parse ctx (Bytes.create 3) with
  | Error "net: truncated" -> ()
  | _ -> Alcotest.fail "short net packet must be rejected");
  let raw = Wire.Net.build ctx ~src:1 ~dst:2 ~ttl:5 ~proto:17 (Bytes.of_string "xy") in
  (* lying length word *)
  let lying = Bytes.cat raw (Bytes.of_string "extra") in
  (match Wire.Net.parse ctx lying with
  | Error "net: bad length" -> ()
  | _ -> Alcotest.fail "length mismatch must be rejected");
  (* flipped header byte lands on the checksum *)
  Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) lxor 0xff));
  (match Wire.Net.parse ctx raw with
  | Error "net: bad checksum" -> ()
  | _ -> Alcotest.fail "header corruption must be rejected");
  match Wire.Net.decrement_ttl ctx (Bytes.create 2) with
  | Error "net: truncated" -> ()
  | _ -> Alcotest.fail "ttl decrement on a stub must be rejected"

let test_transport_error_paths () =
  let _, ctx = ctx_fixture () in
  (match Wire.Transport.parse ctx (Bytes.create 5) with
  | Error "transport: truncated" -> ()
  | _ -> Alcotest.fail "short segment must be rejected");
  let raw = Wire.Transport.build ctx ~sport:1 ~dport:2 (Bytes.of_string "data") in
  (match Wire.Transport.parse ctx (Bytes.sub raw 0 (Bytes.length raw - 1)) with
  | Error "transport: bad length" -> ()
  | _ -> Alcotest.fail "truncated payload must be rejected");
  match Wire.Transport.parse ctx (Bytes.cat raw (Bytes.of_string "!")) with
  | Error "transport: bad length" -> ()
  | _ -> Alcotest.fail "trailing garbage must be rejected"

let test_rpc_codec_errors () =
  (* the codecs reject malformed frames rather than misparsing them *)
  (match Rpc.decode_request (Bytes.create 3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short request must be rejected");
  let req = Rpc.encode_request ~id:7 ~rport:9 ~name:"proc" (Bytes.of_string "args") in
  (* cut inside the procedure name: header promises more than is there *)
  (match Rpc.decode_request (Bytes.sub req 0 9) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated request must be rejected");
  (match Rpc.decode_request req with
  | Ok (7, 9, "proc", args) -> Alcotest.(check string) "args" "args" (Bytes.to_string args)
  | _ -> Alcotest.fail "well-formed request must decode");
  (match Rpc.decode_response (Bytes.create 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short response must be rejected");
  let resp = Rpc.encode_response ~id:7 ~status:Rpc.status_error (Bytes.of_string "boom") in
  match Rpc.decode_response resp with
  | Ok (7, status, payload) ->
    Alcotest.(check int) "status" Rpc.status_error status;
    Alcotest.(check string) "payload" "boom" (Bytes.to_string payload)
  | _ -> Alcotest.fail "well-formed response must decode"

let test_wire_charges_accesses () =
  let clock, ctx = ctx_fixture () in
  let before = Clock.counter clock "component_mem_access" in
  ignore (Wire.Frame.build ctx ~dst:1 ~src:2 (Bytes.create 100));
  let accesses = Clock.counter clock "component_mem_access" - before in
  Alcotest.(check bool)
    (Printf.sprintf "per-byte work recorded (%d)" accesses)
    true (accesses >= 200)

(* --- allocator --------------------------------------------------------------- *)

let alloc_fixture () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let inst = Allocator.create (Kernel.api k) kdom ~heap_pages:2 in
  (k, Kernel.ctx k kdom, inst)

let test_allocator_alloc_free () =
  let _, ctx, a = alloc_fixture () in
  let alloc n = Value.to_int (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"alloc" [ Value.Int n ]) in
  let free addr = ignore (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"free" [ Value.Int addr ]) in
  let avail () = Value.to_int (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"avail" []) in
  let total = avail () in
  let x = alloc 100 in
  let y = alloc 100 in
  Alcotest.(check bool) "disjoint" true (abs (x - y) >= 100);
  Alcotest.(check bool) "avail dropped" true (avail () < total);
  free x;
  free y;
  Alcotest.(check int) "coalesced back to whole heap" total (avail ());
  (* after full free, a big allocation fits again *)
  let z = alloc (total - 8) in
  Alcotest.(check bool) "big alloc" true (z > 0)

let test_allocator_errors () =
  let _, ctx, a = alloc_fixture () in
  (match Invoke.call ctx a ~iface:"allocator" ~meth:"alloc" [ Value.Int 1_000_000 ] with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "exhaustion must fault");
  (match Invoke.call ctx a ~iface:"allocator" ~meth:"free" [ Value.Int 12345 ] with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "bad free must fault");
  (match Invoke.call ctx a ~iface:"allocator" ~meth:"alloc" [ Value.Int 0 ] with
  | Error (Oerror.Type_error _) -> ()
  | _ -> Alcotest.fail "zero-size alloc rejected")

let test_allocator_reuse_after_free () =
  let _, ctx, a = alloc_fixture () in
  let alloc n = Value.to_int (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"alloc" [ Value.Int n ]) in
  let free addr = ignore (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"free" [ Value.Int addr ]) in
  let x = alloc 64 in
  free x;
  let y = alloc 64 in
  Alcotest.(check int) "first-fit reuses the hole" x y

(* --- networking fixture -------------------------------------------------------- *)

let net_fixture ?(placement = System.Certified) ?(loopback = false) ?(addr = 42) () =
  let sys = sys_fixture () in
  let net = System.setup_networking sys ~placement ~addr ~loopback () in
  (sys, System.kernel sys, net)

let stack_call k dom stack meth args =
  Invoke.call_exn (Kernel.ctx k dom) stack ~iface:"stack" ~meth args

let make_packet ctx ~src ~dst ~sport ~dport payload =
  let tp = Wire.Transport.build ctx ~sport ~dport (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src ~dst ~ttl:8 ~proto:Stack.proto_transport tp in
  Wire.Frame.build ctx ~dst ~src np

(* --- netdrv ----------------------------------------------------------------------- *)

let test_netdrv_rx_to_stack () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  ignore (stack_call k kdom net.System.stack "bind_port" [ Value.Int 7 ]);
  let ctx = Kernel.ctx k kdom in
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~src:13 ~dst:42 ~sport:9 ~dport:7 "ping"));
  Kernel.step k ~ticks:2 ();
  (match stack_call k kdom net.System.stack "recv" [ Value.Int 7 ] with
  | Value.List [ Value.Pair (Value.Pair (Value.Int 13, Value.Int 9), Value.Blob b) ] ->
    Alcotest.(check string) "payload" "ping" (Bytes.to_string b)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (* driver stats *)
  (match Invoke.call_exn ctx net.System.driver ~iface:"netdev" ~meth:"stats" [] with
  | Value.Pair (Value.Int rx, Value.Int _) -> Alcotest.(check int) "one rx" 1 rx
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let test_netdrv_tx () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  ignore
    (stack_call k kdom net.System.stack "send"
       [ Value.Int 13; Value.Int 5; Value.Int 6; Value.Blob (Bytes.of_string "out") ]);
  Kernel.step k ~ticks:2 ();
  (match Nic.take_transmitted (Kernel.nic k) with
  | [ frame ] ->
    (match Wire.Frame.parse ctx (Bytes.of_string frame) with
    | Ok { Wire.Frame.dst = 13; src = 42; _ } -> ()
    | _ -> Alcotest.fail "frame headers wrong")
  | l -> Alcotest.failf "expected one frame, got %d" (List.length l))

let test_netdrv_mtu_and_errors () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  (match Invoke.call_exn ctx net.System.driver ~iface:"netdev" ~meth:"mtu" [] with
  | Value.Int m -> Alcotest.(check int) "mtu" Nic.mtu m
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (match
     Invoke.call ctx net.System.driver ~iface:"netdev" ~meth:"send"
       [ Value.Blob (Bytes.create (Nic.mtu + 1)) ]
   with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "oversize frame must fault");
  (match Invoke.call ctx net.System.driver ~iface:"netdev" ~meth:"attach" [ Value.Str "/nonesuch" ] with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "bad sink path must fault")

let test_netdrv_exclusive_io () =
  let sys, k, _net = net_fixture () in
  ignore sys;
  (* the certified driver holds the NIC exclusively: a second driver
     cannot claim it *)
  (match Netdrv.create (Kernel.api k) (Kernel.kernel_domain k) () with
  | exception Vmem.Vmem_error _ -> ()
  | _ -> Alcotest.fail "second exclusive grant must fail")

(* --- stack ------------------------------------------------------------------------- *)

let test_stack_filters_wrong_destination () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  ignore (stack_call k kdom net.System.stack "bind_port" [ Value.Int 7 ]);
  let ctx = Kernel.ctx k kdom in
  Nic.inject (Kernel.nic k)
    (Bytes.to_string (make_packet ctx ~src:13 ~dst:99 ~sport:9 ~dport:7 "not-mine"));
  Kernel.step k ~ticks:2 ();
  (match stack_call k kdom net.System.stack "stats" [] with
  | Value.List [ Value.Int rx_ok; Value.Int dropped; Value.Int _; Value.Int _ ] ->
    Alcotest.(check int) "nothing accepted" 0 rx_ok;
    Alcotest.(check int) "dropped" 1 dropped
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let test_stack_accepts_broadcast () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  ignore (stack_call k kdom net.System.stack "bind_port" [ Value.Int 7 ]);
  let ctx = Kernel.ctx k kdom in
  Nic.inject (Kernel.nic k)
    (Bytes.to_string (make_packet ctx ~src:13 ~dst:0xffff ~sport:9 ~dport:7 "bcast"));
  Kernel.step k ~ticks:2 ();
  Alcotest.check value "broadcast delivered" (Value.Int 1)
    (stack_call k kdom net.System.stack "pending" [ Value.Int 7 ])

let test_stack_drops_corrupt_and_unbound () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  ignore (stack_call k kdom net.System.stack "bind_port" [ Value.Int 7 ]);
  (* corrupt FCS *)
  let raw = make_packet ctx ~src:13 ~dst:42 ~sport:9 ~dport:7 "x" in
  Bytes.set raw 10 (Char.chr (Char.code (Bytes.get raw 10) lxor 0xff));
  Nic.inject (Kernel.nic k) (Bytes.to_string raw);
  (* port 8 is not bound *)
  Nic.inject (Kernel.nic k)
    (Bytes.to_string (make_packet ctx ~src:13 ~dst:42 ~sport:9 ~dport:8 "y"));
  Kernel.step k ~ticks:4 ();
  (match stack_call k kdom net.System.stack "stats" [] with
  | Value.List [ Value.Int 0; Value.Int 2; Value.Int 0; Value.Int 0 ] -> ()
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let test_stack_send_recv_loopback () =
  let _, k, net = net_fixture ~loopback:true () in
  let kdom = Kernel.kernel_domain k in
  ignore (stack_call k kdom net.System.stack "bind_port" [ Value.Int 30 ]);
  ignore
    (stack_call k kdom net.System.stack "send"
       [ Value.Int 42; Value.Int 31; Value.Int 30; Value.Blob (Bytes.of_string "self") ]);
  Kernel.step k ~ticks:4 ();
  (match stack_call k kdom net.System.stack "recv" [ Value.Int 30 ] with
  | Value.List [ Value.Pair (Value.Pair (Value.Int 42, Value.Int 31), Value.Blob b) ] ->
    Alcotest.(check string) "self-delivery" "self" (Bytes.to_string b)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let test_stack_port_management () =
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  ignore (stack_call k kdom net.System.stack "bind_port" [ Value.Int 5 ]);
  (match
     Invoke.call (Kernel.ctx k kdom) net.System.stack ~iface:"stack" ~meth:"bind_port"
       [ Value.Int 5 ]
   with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "double bind must fault");
  ignore (stack_call k kdom net.System.stack "unbind_port" [ Value.Int 5 ]);
  (match
     Invoke.call (Kernel.ctx k kdom) net.System.stack ~iface:"stack" ~meth:"recv"
       [ Value.Int 5 ]
   with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "recv on unbound port must fault")

let test_stack_layer_replacement () =
  (* swap the transport layer for one that uppercases payloads: dynamic
     reconfiguration of a running composition *)
  let sys, k, _net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let comp = Stack.create api kdom ~addr:50 ~driver_path:"/services/netdrv" in
  let shouting =
    let encode ctx = function
      | [ Value.Int sport; Value.Int dport; Value.Blob payload ] ->
        let upper = Bytes.of_string (String.uppercase_ascii (Bytes.to_string payload)) in
        Ok (Value.Blob (Wire.Transport.build ctx ~sport ~dport upper))
      | _ -> Error (Oerror.Type_error "encode")
    in
    let decode ctx = function
      | [ Value.Blob raw ] ->
        (match Wire.Transport.parse ctx raw with
        | Ok { Wire.Transport.sport; dport; payload } ->
          Ok (Value.Pair (Value.Pair (Value.Int sport, Value.Int dport), Value.Blob payload))
        | Error e -> Error (Oerror.Fault e))
      | _ -> Error (Oerror.Type_error "decode")
    in
    Iface.make ~name:"layer"
      [
        Iface.meth ~name:"encode" ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tblob encode;
        Iface.meth ~name:"decode" ~args:[ Vtype.Tblob ]
          ~ret:(Vtype.Tpair (Vtype.Tpair (Vtype.Tint, Vtype.Tint), Vtype.Tblob))
          decode;
      ]
  in
  let replacement =
    Instance.create api.Api.registry ~class_name:"test.shouting" ~domain:kdom.Domain.id
      [ shouting ]
  in
  Stack.replace_layer comp "transport" replacement;
  let stack = Composite.instance comp in
  let ctx = Kernel.ctx k kdom in
  ignore (Invoke.call_exn ctx stack ~iface:"stack" ~meth:"bind_port" [ Value.Int 1 ]);
  ignore
    (Invoke.call_exn ctx stack ~iface:"stack" ~meth:"send"
       [ Value.Int 60; Value.Int 1; Value.Int 2; Value.Blob (Bytes.of_string "quiet") ]);
  Kernel.step k ~ticks:2 ();
  (match Nic.take_transmitted (Kernel.nic k) with
  | [ frame ] ->
    (* decode with the standard layers: payload must be uppercased *)
    (match Wire.Frame.parse ctx (Bytes.of_string frame) with
    | Ok { Wire.Frame.payload = np; _ } ->
      (match Wire.Net.parse ctx np with
      | Ok { Wire.Net.payload = tp; _ } ->
        (match Wire.Transport.parse ctx tp with
        | Ok { Wire.Transport.payload; _ } ->
          Alcotest.(check string) "uppercased on the wire" "QUIET"
            (Bytes.to_string payload)
        | Error e -> Alcotest.fail e)
      | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.fail e)
  | l -> Alcotest.failf "expected one frame, got %d" (List.length l));
  ignore sys;
  (match Stack.replace_layer comp "bogus" replacement with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown layer rejected")

(* --- rpc -------------------------------------------------------------------------- *)

let rpc_fixture () =
  let sys, k, _net = net_fixture ~loopback:true () in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let procedures =
    [
      ("echo", fun _ctx b -> Ok b);
      ("upper", fun _ctx b -> Ok (Bytes.of_string (String.uppercase_ascii (Bytes.to_string b))));
      ("fail", fun _ctx _ -> Error "application exploded");
    ]
  in
  let server = Rpc.create_server api kdom ~stack_path:"/services/stack" ~port:100 ~procedures in
  let client =
    Rpc.create_client api kdom ~stack_path:"/services/stack" ~port:200 ~server:(42, 100) ()
  in
  (sys, k, server, client)

let run_rpc k body =
  let result = ref None in
  let kdom = Kernel.kernel_domain k in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"rpc-test" ~domain:kdom.Domain.id (fun () ->
         result := Some (body ())));
  (* pump the server alongside *)
  Kernel.step k ~ticks:100 ();
  !result

let test_rpc_round_trip () =
  let _, k, server, client = rpc_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"server-pump" ~domain:kdom.Domain.id (fun () ->
         for _ = 1 to 300 do
           ignore (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));
  (match
     run_rpc k (fun () ->
         Invoke.call_exn ctx client ~iface:"rpc" ~meth:"call"
           [ Value.Str "upper"; Value.Blob (Bytes.of_string "shout") ])
   with
  | Some (Value.Blob b) -> Alcotest.(check string) "result" "SHOUT" (Bytes.to_string b)
  | _ -> Alcotest.fail "rpc did not complete");
  (* server-side counters *)
  (match Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"requests" [] with
  | Value.Int n -> Alcotest.(check int) "one request" 1 n
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v))

let test_rpc_application_error () =
  let _, k, server, client = rpc_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"server-pump" ~domain:kdom.Domain.id (fun () ->
         for _ = 1 to 300 do
           ignore (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));
  let got = ref None in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"client" ~domain:kdom.Domain.id (fun () ->
         got :=
           Some
             (Invoke.call ctx client ~iface:"rpc" ~meth:"call"
                [ Value.Str "fail"; Value.Blob Bytes.empty ])));
  Kernel.step k ~ticks:100 ();
  (match !got with
  | Some (Error (Oerror.Fault msg)) ->
    Alcotest.(check bool) "remote error surfaced" true
      (String.length msg > 0 && String.sub msg 0 4 = "rpc:")
  | _ -> Alcotest.fail "expected remote fault");
  (* unknown procedure; the first pump may be exhausted, start another *)
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"server-pump2" ~domain:kdom.Domain.id (fun () ->
         for _ = 1 to 300 do
           ignore (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));
  let got2 = ref None in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"client2" ~domain:kdom.Domain.id (fun () ->
         got2 :=
           Some
             (Invoke.call ctx client ~iface:"rpc" ~meth:"call"
                [ Value.Str "nonesuch"; Value.Blob Bytes.empty ])));
  Kernel.step k ~ticks:100 ();
  (match !got2 with
  | Some (Error (Oerror.Fault _)) -> ()
  | _ -> Alcotest.fail "unknown procedure must fault")

let test_rpc_measurement_interface () =
  let _, k, server, client = rpc_fixture () in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  (* interface evolution: users bound to "rpc" are untouched *)
  Alcotest.(check (list string)) "before" [ "rpc" ] (Instance.interface_names client);
  Rpc.add_measurement client;
  Alcotest.(check (list string)) "after" [ "rpc"; "rpc.measure" ]
    (Instance.interface_names client);
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"server-pump" ~domain:kdom.Domain.id (fun () ->
         for _ = 1 to 300 do
           ignore (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));
  ignore
    (run_rpc k (fun () ->
         Invoke.call_exn ctx client ~iface:"rpc" ~meth:"call"
           [ Value.Str "echo"; Value.Blob (Bytes.of_string "m") ]));
  Alcotest.check value "calls measured" (Value.Int 1)
    (Invoke.call_exn ctx client ~iface:"rpc.measure" ~meth:"calls" []);
  (match Invoke.call_exn ctx client ~iface:"rpc.measure" ~meth:"cycles" [] with
  | Value.Int c -> Alcotest.(check bool) "cycles positive" true (c > 0)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (match Rpc.add_measurement server with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "measurement only fits clients")

(* --- interposition ------------------------------------------------------------------ *)

let test_interpose_forwards_and_counts () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let target = Allocator.create api kdom ~heap_pages:1 in
  let agent = Interpose.wrap api kdom ~target () in
  let ctx = Kernel.ctx k kdom in
  (* superset: all original interfaces plus monitor *)
  Alcotest.(check (list string)) "superset" [ "allocator"; "monitor" ]
    (Instance.interface_names agent);
  let addr = Value.to_int (Invoke.call_exn ctx agent ~iface:"allocator" ~meth:"alloc" [ Value.Int 64 ]) in
  ignore (Invoke.call_exn ctx agent ~iface:"allocator" ~meth:"free" [ Value.Int addr ]);
  Alcotest.check value "calls counted" (Value.Int 2)
    (Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"calls" []);
  ignore (Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"reset" []);
  Alcotest.check value "reset" (Value.Int 0)
    (Invoke.call_exn ctx agent ~iface:"monitor" ~meth:"calls" [])

let test_interpose_hooks_and_overrides () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let target = Allocator.create api kdom ~heap_pages:1 in
  let calls = ref [] and results = ref 0 in
  let deny_free _ctx _args = Error (Oerror.Fault "frees are forbidden here") in
  let agent =
    Interpose.wrap api kdom ~target
      ~on_call:(fun ~iface ~meth _args -> calls := (iface ^ "." ^ meth) :: !calls)
      ~on_result:(fun ~iface:_ ~meth:_ _ _ -> incr results)
      ~overrides:[ ("allocator", "free", deny_free) ]
      ()
  in
  let ctx = Kernel.ctx k kdom in
  let addr = Value.to_int (Invoke.call_exn ctx agent ~iface:"allocator" ~meth:"alloc" [ Value.Int 8 ]) in
  (match Invoke.call ctx agent ~iface:"allocator" ~meth:"free" [ Value.Int addr ] with
  | Error (Oerror.Fault "frees are forbidden here") -> ()
  | _ -> Alcotest.fail "override must replace the method");
  Alcotest.(check (list string)) "hooks saw both"
    [ "allocator.alloc"; "allocator.free" ]
    (List.rev !calls);
  Alcotest.(check int) "result hook fired" 2 !results

let test_interpose_attach_in_namespace () =
  (* the paper's /shared/network scenario: a monitor slipped in front of
     the network device; existing name, new object *)
  let _, k, net = net_fixture () in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let agent = Interpose.packet_monitor api kdom ~target:net.System.driver in
  (match Interpose.attach api ~path:"/shared/network" ~agent with
  | Ok old -> Alcotest.(check bool) "old instance returned" true (old == net.System.driver)
  | Error e -> Alcotest.fail e);
  (* new binds resolve to the agent; traffic through it is observed *)
  let bound = Kernel.bind k kdom "/shared/network" in
  Alcotest.(check bool) "bind gets agent" true (bound == agent);
  let ctx = Kernel.ctx k kdom in
  ignore
    (Invoke.call_exn ctx bound ~iface:"netdev" ~meth:"send"
       [ Value.Blob (Bytes.of_string "0123456789") ]);
  Alcotest.check value "bytes observed" (Value.Int 10)
    (Invoke.call_exn ctx bound ~iface:"monitor" ~meth:"blob_bytes" []);
  (* the send went through to the real driver *)
  Kernel.step k ~ticks:1 ();
  Alcotest.(check int) "frame transmitted" 1
    (List.length (Nic.take_transmitted (Kernel.nic k)))

let test_interpose_stacking () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let target = Allocator.create api kdom ~heap_pages:1 in
  let a1 = Interpose.wrap api kdom ~target () in
  let a2 = Interpose.wrap api kdom ~target:a1 () in
  let ctx = Kernel.ctx k kdom in
  ignore (Invoke.call_exn ctx a2 ~iface:"allocator" ~meth:"avail" []);
  Alcotest.check value "outer saw it" (Value.Int 1)
    (Invoke.call_exn ctx a2 ~iface:"monitor" ~meth:"calls" []);
  Alcotest.check value "inner saw it too" (Value.Int 1)
    (Invoke.call_exn ctx a1 ~iface:"monitor" ~meth:"calls" [])


(* --- allocator model-based property ------------------------------------------ *)

(* random alloc/free sequences against invariants: allocations are
   aligned, in-heap and pairwise disjoint; freeing everything restores
   the full heap (perfect coalescing) *)
let allocator_model_prop =
  let open QCheck2 in
  let gen_op =
    Gen.(
      frequency
        [ (3, map (fun n -> `Alloc (8 + n)) (int_bound 600));
          (2, map (fun i -> `Free i) (int_bound 20)) ])
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:40 ~name:"alloc/free sequences keep invariants"
       Gen.(list_size (int_range 1 40) gen_op)
       (fun ops ->
         let _, ctx, a = alloc_fixture () in
         let total =
           Value.to_int (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"avail" [])
         in
         let live = ref [] in
         let ok = ref true in
         List.iter
           (fun op ->
             match op with
             | `Alloc size -> (
               match Invoke.call ctx a ~iface:"allocator" ~meth:"alloc" [ Value.Int size ] with
               | Ok (Value.Int addr) ->
                 if addr mod 8 <> 0 then ok := false;
                 (* no overlap with any live allocation *)
                 List.iter
                   (fun (base, sz) ->
                     if addr < base + sz && base < addr + size then ok := false)
                   !live;
                 live := (addr, size) :: !live
               | Ok _ -> ok := false
               | Error (Oerror.Fault _) -> () (* exhaustion is legal *)
               | Error _ -> ok := false)
             | `Free i ->
               if !live <> [] then begin
                 let idx = i mod List.length !live in
                 let addr, _ = List.nth !live idx in
                 live := List.filteri (fun j _ -> j <> idx) !live;
                 match Invoke.call ctx a ~iface:"allocator" ~meth:"free" [ Value.Int addr ] with
                 | Ok Value.Unit -> ()
                 | _ -> ok := false
               end)
           ops;
         (* free the rest: heap must coalesce back to one block *)
         List.iter
           (fun (addr, _) ->
             ignore (Invoke.call ctx a ~iface:"allocator" ~meth:"free" [ Value.Int addr ]))
           !live;
         let avail =
           Value.to_int (Invoke.call_exn ctx a ~iface:"allocator" ~meth:"avail" [])
         in
         !ok && avail = total))

(* parser totality: random byte strings never raise out of the wire
   parsers — malformed frames are Errors, not exceptions *)
let wire_totality_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"wire parsers are total on junk"
       QCheck2.Gen.(string_size (int_range 0 128))
       (fun junk ->
         let _, ctx = ctx_fixture () in
         let b = Bytes.of_string junk in
         (match Wire.Frame.parse ctx b with Ok _ | Error _ -> ());
         (match Wire.Net.parse ctx (Bytes.copy b) with Ok _ | Error _ -> ());
         (match Wire.Transport.parse ctx (Bytes.copy b) with Ok _ | Error _ -> ());
         true))

(* wire round-trip property across all three layers *)
let wire_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"3-layer encapsulation round trips"
       QCheck2.Gen.(
         quad (string_size (int_range 0 200)) (int_bound 0xffff) (int_bound 0xffff)
           (int_bound 0xffff))
       (fun (payload, dst, sport, dport) ->
         let _, ctx = ctx_fixture () in
         let tp = Wire.Transport.build ctx ~sport ~dport (Bytes.of_string payload) in
         let np = Wire.Net.build ctx ~src:1 ~dst ~ttl:4 ~proto:17 tp in
         let frame = Wire.Frame.build ctx ~dst ~src:1 np in
         match Wire.Frame.parse ctx frame with
         | Error _ -> false
         | Ok { Wire.Frame.payload = np'; _ } ->
           (match Wire.Net.parse ctx np' with
           | Error _ -> false
           | Ok { Wire.Net.payload = tp'; _ } ->
             (match Wire.Transport.parse ctx tp' with
             | Error _ -> false
             | Ok { Wire.Transport.sport = s'; dport = d'; payload = p' } ->
               s' = sport && d' = dport && Bytes.to_string p' = payload))))

let () =
  Alcotest.run "components"
    [
      ("codegen", [ Alcotest.test_case "synthesize/tamper" `Quick test_codegen ]);
      ( "wire",
        [
          Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
          Alcotest.test_case "frame corruption" `Quick test_frame_detects_corruption;
          Alcotest.test_case "net + ttl" `Quick test_net_round_trip_and_ttl;
          Alcotest.test_case "transport" `Quick test_transport_round_trip;
          Alcotest.test_case "net error paths" `Quick test_net_error_paths;
          Alcotest.test_case "transport error paths" `Quick test_transport_error_paths;
          Alcotest.test_case "rpc codec errors" `Quick test_rpc_codec_errors;
          Alcotest.test_case "access charging" `Quick test_wire_charges_accesses;
          wire_totality_prop;
          wire_roundtrip_prop;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "alloc/free/coalesce" `Quick test_allocator_alloc_free;
          Alcotest.test_case "errors" `Quick test_allocator_errors;
          Alcotest.test_case "first-fit reuse" `Quick test_allocator_reuse_after_free;
          allocator_model_prop;
        ] );
      ( "netdrv",
        [
          Alcotest.test_case "rx to stack" `Quick test_netdrv_rx_to_stack;
          Alcotest.test_case "tx" `Quick test_netdrv_tx;
          Alcotest.test_case "mtu/errors" `Quick test_netdrv_mtu_and_errors;
          Alcotest.test_case "exclusive io" `Quick test_netdrv_exclusive_io;
        ] );
      ( "stack",
        [
          Alcotest.test_case "filters wrong dst" `Quick
            test_stack_filters_wrong_destination;
          Alcotest.test_case "broadcast" `Quick test_stack_accepts_broadcast;
          Alcotest.test_case "drops corrupt/unbound" `Quick
            test_stack_drops_corrupt_and_unbound;
          Alcotest.test_case "loopback send/recv" `Quick test_stack_send_recv_loopback;
          Alcotest.test_case "port management" `Quick test_stack_port_management;
          Alcotest.test_case "layer replacement" `Quick test_stack_layer_replacement;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "round trip" `Quick test_rpc_round_trip;
          Alcotest.test_case "application error" `Quick test_rpc_application_error;
          Alcotest.test_case "measurement interface" `Quick
            test_rpc_measurement_interface;
        ] );
      ( "interpose",
        [
          Alcotest.test_case "forwards and counts" `Quick
            test_interpose_forwards_and_counts;
          Alcotest.test_case "hooks and overrides" `Quick
            test_interpose_hooks_and_overrides;
          Alcotest.test_case "attach in namespace" `Quick
            test_interpose_attach_in_namespace;
          Alcotest.test_case "stacking" `Quick test_interpose_stacking;
        ] );
    ]
