(* Tests for Pm_journal: the event-sourced system history, its export /
   import round-trip, the /nucleus/journal service, transactional
   composition with rollback, deterministic record/replay, and the
   history-derived lint rules. *)

open Paramecium

let journal_of sys = Obs.journal (Clock.obs (System.clock sys))

let contains s sub =
  let slen = String.length sub in
  let rec go i =
    i + slen <= String.length s && (String.sub s i slen = sub || go (i + 1))
  in
  go 0

let record_traps j n =
  for i = 1 to n do
    Journal.record j ~kind:Journal.Trap ~domain:0 ~at:(i * 10) ~info:i
      ~detail:""
  done

(* --- core mechanics ----------------------------------------------------- *)

let test_tail_wrap () =
  let j = Journal.create ~tail_capacity:4 () in
  record_traps j 10;
  Alcotest.(check int) "written counts everything" 10 (Journal.written j);
  Alcotest.(check int) "all were execution events" 10 (Journal.exec_written j);
  Alcotest.(check (list int))
    "ring keeps the newest, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Journal.info) (Journal.tail j));
  Alcotest.(check int) "tail mode retains no history" 0 (Journal.retained j);
  Alcotest.(check bool) "tail mode is not complete" false (Journal.complete j);
  Alcotest.(check int) "per-kind count" 10 (Journal.count j Journal.Trap)

let test_structural_archive_survives_wrap () =
  let j = Journal.create ~tail_capacity:2 () in
  Journal.record j ~kind:Journal.Bind ~domain:1 ~at:5 ~info:7 ~detail:"/a";
  record_traps j 50;
  Journal.record j ~kind:Journal.Unbind ~domain:1 ~at:600 ~info:7 ~detail:"/a";
  (* the ring forgot the Bind long ago; the archive never does *)
  Alcotest.(check int) "ring holds only tail_capacity" 2
    (List.length (Journal.tail j));
  Alcotest.(check bool) "archive kept both mutations in order" true
    (List.map (fun e -> e.Journal.kind) (Journal.structural j)
    = [ Journal.Bind; Journal.Unbind ])

let test_full_compaction () =
  let j = Journal.create ~retain:8 () in
  Journal.set_mode j Journal.Full;
  Alcotest.(check bool) "full from event 0 is complete" true (Journal.complete j);
  record_traps j 20;
  Alcotest.(check int) "retained bounded by retain" 8 (Journal.retained j);
  Alcotest.(check int) "compaction is counted, never silent" 12
    (Journal.compacted j);
  Alcotest.(check bool) "compaction voids completeness" false
    (Journal.complete j);
  Alcotest.(check (list int))
    "oldest events dropped first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.Journal.info) (Journal.history j))

let test_mode_switching () =
  let j = Journal.create () in
  Alcotest.(check string) "new journals default to tail" "tail"
    (Journal.mode_to_string (Journal.mode j));
  record_traps j 3;
  Journal.set_mode j Journal.Full;
  Alcotest.(check bool) "mid-run switch is not complete" false
    (Journal.complete j);
  record_traps j 2;
  Alcotest.(check (list int))
    "history starts at the switch" [ 1; 2 ]
    (List.map (fun e -> e.Journal.info) (Journal.history j));
  Alcotest.(check (list int))
    "seq numbering is global" [ 3; 4 ]
    (List.map (fun e -> e.Journal.seq) (Journal.history j));
  (* switching back stops extending but keeps what was captured *)
  Journal.set_mode j Journal.Tail;
  record_traps j 1;
  Alcotest.(check int) "tail mode stops the stream" 2 (Journal.retained j)

let test_mark () =
  let j = Journal.create () in
  record_traps j 5;
  let seq = Journal.mark j ~domain:3 ~at:99 "checkpoint" in
  Alcotest.(check int) "mark returns its seq" 5 seq;
  Alcotest.(check int) "marks are counted" 1 (Journal.count j Journal.Mark);
  match Journal.structural j with
  | [ e ] ->
    Alcotest.(check string) "label stored" "checkpoint" e.Journal.detail;
    Alcotest.(check int) "domain stored" 3 e.Journal.domain
  | evs -> Alcotest.failf "expected one structural event, got %d" (List.length evs)

(* --- export / import ----------------------------------------------------- *)

let gnarly_details =
  [
    "plain";
    "";
    "with \"quotes\" inside";
    "line1\nline2\r\ttabbed";
    "back\\slash and %S and %d";
    "frame 7 from dom 2 vpage 9";
    String.make 300 'x';
  ]

let test_export_import_roundtrip () =
  let j = Journal.create () in
  Journal.set_mode j Journal.Full;
  List.iteri
    (fun i d ->
      Journal.record j ~kind:Journal.Install ~domain:i ~at:(i * 7) ~info:i
        ~detail:d)
    gnarly_details;
  Journal.record j ~kind:Journal.Trap ~domain:0 ~at:max_int ~info:min_int
    ~detail:"extremes";
  let ex = Journal.export j in
  Alcotest.(check bool) "header is versioned" true
    (String.length ex >= 13 && String.sub ex 0 13 = "pm-journal-v1");
  match Journal.import ex with
  | Error e -> Alcotest.fail e
  | Ok events ->
    let orig = Journal.history j in
    Alcotest.(check int) "every event came back" (List.length orig)
      (List.length events);
    List.iter2
      (fun a b ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" a.Journal.seq)
          true (Journal.event_equal a b))
      orig events

(* rid-stamped events (tracing on) round-trip; unstamped lines carry no
   suffix, so untraced exports keep their exact bytes *)
let test_rid_roundtrip () =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      Journal.record j ~kind:Journal.Trap ~domain:0 ~at:1 ~info:0 ~detail:"";
      Trace.set_enabled true;
      let rid = Journal.req_begin j ~domain:2 ~at:5 ~detail:"put \"k\"\n1" in
      Alcotest.(check bool) "rids mint from 1" true (rid >= 1);
      Journal.record j ~kind:Journal.Span_enter ~domain:0 ~at:6 ~info:0
        ~detail:"kv";
      Journal.record j ~kind:Journal.Span_exit ~domain:0 ~at:9 ~info:0
        ~detail:"kv";
      Journal.req_end j ~domain:2 ~at:11 rid;
      let ex = Journal.export j in
      (match Journal.import ex with
      | Error e -> Alcotest.fail e
      | Ok events ->
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              (Printf.sprintf "event %d round-trips with rid %d" a.Journal.seq
                 a.Journal.rid)
              true (Journal.event_equal a b))
          (Journal.history j) events;
        let rids = List.map (fun e -> e.Journal.rid) events in
        Alcotest.(check (list int)) "rid stamped on traced events only"
          [ 0; rid; rid; rid; rid ] rids);
      (* the untraced event's line must not mention rid at all *)
      match String.split_on_char '\n' ex with
      | _header :: first :: _ ->
        Alcotest.(check bool) "untraced line carries no rid field" false
          (contains first "rid=")
      | _ -> Alcotest.fail "export too short")

(* adversarial Mark labels — quotes, newlines, empty — round-trip and
   never break the line format, stamped or not *)
let test_adversarial_marks_roundtrip () =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      let j = Journal.create () in
      Journal.set_mode j Journal.Full;
      Trace.set_enabled true;
      List.iteri
        (fun i d ->
          Trace.set_current (i mod 2);
          (* alternate stamped / unstamped *)
          ignore (Journal.mark j ~domain:0 ~at:i d))
        ("" :: "rid=7 impostor" :: gnarly_details);
      match Journal.import (Journal.export j) with
      | Error e -> Alcotest.fail e
      | Ok events ->
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              (Printf.sprintf "mark %d round-trips" a.Journal.seq)
              true (Journal.event_equal a b))
          (Journal.history j) events)

(* a truncated (non-complete) export imports fine but says so — the
   fail-soft contract the query fold builds on *)
let test_truncated_import_fails_soft () =
  let j = Journal.create ~retain:4 () in
  Journal.set_mode j Journal.Full;
  record_traps j 10;
  Alcotest.(check bool) "compaction voided completeness" false
    (Journal.complete j);
  (match Journal.import_all (Journal.export j) with
  | Error e -> Alcotest.fail e
  | Ok { Journal.events; complete } ->
    Alcotest.(check int) "events still import" 4 (List.length events);
    Alcotest.(check bool) "header says incomplete" false complete;
    (* the causal fold refuses it with a named error, never an exception *)
    match Query.fold ~complete events with
    | Error e ->
      Alcotest.(check bool) "error names the incomplete history" true
        (String.length e >= 17 && String.sub e 0 17 = "query: incomplete")
    | Ok _ -> Alcotest.fail "fold accepted a truncated history");
  (* a complete journal's header says so *)
  let jc = Journal.create () in
  Journal.set_mode jc Journal.Full;
  record_traps jc 2;
  match Journal.import_all (Journal.export jc) with
  | Ok { Journal.complete = true; _ } -> ()
  | Ok _ -> Alcotest.fail "complete journal imported as incomplete"
  | Error e -> Alcotest.fail e

let test_import_rejects_garbage () =
  (match Journal.import "not a journal" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "imported garbage");
  match Journal.import "pm-journal-v1 events=1 complete=1\nbad line here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "imported a malformed event line"

let test_first_divergence () =
  let j = Journal.create () in
  Journal.set_mode j Journal.Full;
  record_traps j 4;
  let evs = Journal.history j in
  Alcotest.(check bool) "identical streams do not diverge" true
    (Journal.first_divergence ~expected:evs ~got:evs = None);
  let tweaked =
    List.map
      (fun e ->
        if e.Journal.seq = 2 then { e with Journal.info = 999 } else e)
      evs
  in
  (match Journal.first_divergence ~expected:evs ~got:tweaked with
  | Some d ->
    Alcotest.(check int) "divergence at the tweaked event" 2 d.Journal.index;
    Alcotest.(check bool) "rendering mentions the index" true
      (String.length (Journal.divergence_to_string d) > 0)
  | None -> Alcotest.fail "tweak not detected");
  match
    Journal.first_divergence ~expected:evs
      ~got:(List.filteri (fun i _ -> i < 3) evs)
  with
  | Some { Journal.index = 3; got = None; _ } -> ()
  | _ -> Alcotest.fail "truncation not reported as end-of-journal"

(* --- the /nucleus/journal service ---------------------------------------- *)

let test_journal_service_cross_domain () =
  let sys = System.create () in
  let k = System.kernel sys in
  let udom = System.new_domain sys "observer" in
  let svc = Kernel.bind k udom "/nucleus/journal" in
  Alcotest.(check bool) "cross-domain bind is a proxy" true (Proxy.is_proxy svc);
  Mmu.switch_context (Machine.mmu (Kernel.machine k)) udom.Domain.id;
  let ctx = Kernel.ctx k udom in
  let call m args = Invoke.call_exn ctx svc ~iface:"journal" ~meth:m args in
  (match call "mode" [] with
  | Value.Str s -> Alcotest.(check string) "default mode" "tail" s
  | _ -> Alcotest.fail "mode()");
  (* a mark is attributed to the calling domain, not the kernel *)
  let seq =
    match call "mark" [ Value.Str "observer-was-here" ] with
    | Value.Int s -> s
    | _ -> Alcotest.fail "mark()"
  in
  Alcotest.(check bool) "mark returns a seq" true (seq >= 0);
  let j = journal_of sys in
  (match
     List.filter (fun e -> e.Journal.kind = Journal.Mark) (Journal.structural j)
   with
  | [ m ] ->
    Alcotest.(check int) "mark charged to the caller" udom.Domain.id
      m.Journal.domain;
    Alcotest.(check string) "label kept" "observer-was-here" m.Journal.detail
  | ms -> Alcotest.failf "expected one mark, got %d" (List.length ms));
  ignore (call "set_mode" [ Value.Str "full" ]);
  (match call "mode" [] with
  | Value.Str s -> Alcotest.(check string) "mode switched" "full" s
  | _ -> Alcotest.fail "mode() after set_mode");
  (match call "complete" [] with
  | Value.Bool b ->
    Alcotest.(check bool) "mid-run switch is incomplete" false b
  | _ -> Alcotest.fail "complete()");
  (match call "stats" [] with
  | Value.Str s ->
    Alcotest.(check bool) "stats line renders" true
      (String.length s >= 8 && String.sub s 0 8 = "journal:")
  | _ -> Alcotest.fail "stats()");
  (match call "snapshot" [ Value.Int 3 ] with
  | Value.Str s ->
    Alcotest.(check bool) "bounded snapshot is at most 3 lines" true
      (List.length (String.split_on_char '\n' s) <= 3)
  | _ -> Alcotest.fail "snapshot(3)");
  match call "export" [] with
  | Value.Str s ->
    (match Journal.import s with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("service export does not import: " ^ e))
  | _ -> Alcotest.fail "export()"

(* --- transactional composition ------------------------------------------- *)

let alloc_image name =
  Images.image ~name ~size:8_192 ~author:"kernel-team"
    (Images.allocator_construct ~heap_pages:2)

let lookup_fails k path =
  match
    Namespace.lookup
      (Directory.namespace (Kernel.directory k))
      (Path.of_string path)
  with
  | Ok _ -> false
  | Error _ -> true

let test_txn_commit () =
  let sys = System.create () in
  let k = System.kernel sys in
  let j = journal_of sys in
  (match
     System.transact sys "wire-alloc" (fun txn ->
         match
           System.txn_install txn (alloc_image "alloc")
             ~placement:System.Certified ~at:"/services/txalloc"
         with
         | Error _ as e -> e
         | Ok inst -> System.txn_register txn "/shared/txalloc" inst)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "install visible" false (lookup_fails k "/services/txalloc");
  Alcotest.(check bool) "alias visible" false (lookup_fails k "/shared/txalloc");
  Alcotest.(check int) "one begin" 1 (Journal.count j Journal.Txn_begin);
  Alcotest.(check int) "one commit" 1 (Journal.count j Journal.Txn_commit);
  Alcotest.(check int) "no abort" 0 (Journal.count j Journal.Txn_abort)

(* roll back after step 1 (install), step 2 (register), step 3
   (interpose): whatever the txn got through must be invisible afterwards
   — namespace, page tables, interposition log, and the linter all read
   as if it never ran *)
let test_txn_rollback_each_step () =
  let at_step step =
    let sys = System.create () in
    let k = System.kernel sys in
    let kdom = Kernel.kernel_domain k in
    let base =
      System.install_exn sys (alloc_image "base") ~placement:System.Certified
        ~at:"/services/base"
    in
    let vmem = Kernel.vmem k in
    let pages_before = List.sort compare (Vmem.alloc_keys vmem) in
    let ( let* ) = Result.bind in
    (match
       System.transact sys "doomed" (fun txn ->
           let* inst =
             System.txn_install txn (alloc_image "tx")
               ~placement:System.Certified ~at:"/services/tx"
           in
           if step = 1 then Error "fail after install"
           else
             let* () = System.txn_register txn "/shared/tx" inst in
             if step = 2 then Error "fail after register"
             else
               let* _displaced =
                 System.txn_interpose txn "/services/base" inst
               in
               Error "fail after interpose")
     with
    | Ok () -> Alcotest.fail "doomed transaction committed"
    | Error _ -> ());
    let tag m = Printf.sprintf "step %d: %s" step m in
    Alcotest.(check bool) (tag "install rolled back") true
      (lookup_fails k "/services/tx");
    Alcotest.(check bool) (tag "register rolled back") true
      (lookup_fails k "/shared/tx");
    Alcotest.(check bool) (tag "interposition log empty") true
      (Directory.replacements (Kernel.directory k) = []);
    Alcotest.(check bool) (tag "original back behind the name") true
      (Kernel.bind k kdom "/services/base" == base);
    Alcotest.(check bool) (tag "pages freed") true
      (List.sort compare (Vmem.alloc_keys vmem) = pages_before);
    let j = journal_of sys in
    Alcotest.(check int) (tag "abort journalled") 1
      (Journal.count j Journal.Txn_abort);
    Alcotest.(check int) (tag "nothing committed") 0
      (Journal.count j Journal.Txn_commit);
    (* the linter sees a healthy system, every rule running *)
    let report =
      Lint.run ~machine:(Kernel.machine k) ~directory:(Kernel.directory k)
        ~events:(Kernel.events k) ~journal:j
        ~domains:(fun () -> Kernel.domains k)
        ()
    in
    Alcotest.(check int) (tag "all rules ran") 10 report.Lint.rules_run;
    Alcotest.(check int) (tag "lint clean") 0
      (List.length (Lint.errors report))
  in
  List.iter at_step [ 1; 2; 3 ]

(* --- deterministic record / replay --------------------------------------- *)

let test_replay_all_scenarios () =
  List.iter
    (fun (name, _desc) ->
      match Replay.record name with
      | Error e -> Alcotest.failf "%s: record failed: %s" name e
      | Ok r ->
        (match Journal.import r.Replay.journal with
        | Ok events ->
          Alcotest.(check bool) (name ^ ": captured events") true
            (List.length events > 0)
        | Error e -> Alcotest.failf "%s: journal unreadable: %s" name e);
        (match Replay.replay r with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: replay diverged: %s" name e))
    Replay.scenarios

let test_replay_crashed_run () =
  (* a run that ends in a thread crash is as replayable as a clean one *)
  match Replay.record "crash" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let events =
      match Journal.import r.Replay.journal with
      | Ok es -> es
      | Error e -> Alcotest.fail e
    in
    Alcotest.(check bool) "the crash itself is in the history" true
      (List.exists (fun e -> e.Journal.kind = Journal.Crash) events);
    (match Replay.replay r with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("crashed run did not replay: " ^ e))

(* flip the first occurrence of [from] to the same-width [to_], so the
   line still parses — only the event lies *)
let flip s ~from ~to_ =
  let b = Bytes.of_string s in
  let flen = String.length from in
  let rec go i =
    if i + flen > Bytes.length b then s
    else if Bytes.sub_string b i flen = from then begin
      Bytes.blit_string to_ 0 b i (String.length to_);
      Bytes.to_string b
    end
    else go (i + 1)
  in
  go 0

let test_recording_roundtrip_and_tamper () =
  match Replay.record "compose" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* on-disk round-trip preserves every field *)
    (match Replay.recording_of_string (Replay.recording_to_string r) with
    | Ok r' ->
      Alcotest.(check string) "scenario survives" r.Replay.scenario
        r'.Replay.scenario;
      Alcotest.(check string) "journal survives" r.Replay.journal
        r'.Replay.journal;
      Alcotest.(check string) "stats survive" r.Replay.stats r'.Replay.stats
    | Error e -> Alcotest.fail ("round-trip failed: " ^ e));
    (* a tampered recording is caught with a divergence diagnosis.
       "txn-abort " is the same width as "txn-commit", so the line still
       parses — only the event kind lies *)
    let tampered =
      { r with
        Replay.journal = flip r.Replay.journal ~from:"txn-commit" ~to_:"txn-abort " }
    in
    Alcotest.(check bool) "tamper left the journal changed" true
      (tampered.Replay.journal <> r.Replay.journal);
    (match Replay.replay tampered with
    | Error e ->
      Alcotest.(check bool) "divergence diagnosed" true
        (String.length e > 0)
    | Ok () -> Alcotest.fail "tampered recording replayed clean");
    match Replay.record "no-such-scenario" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "unknown scenario recorded"

(* --bisect narrows a divergence to the first bad event on the cycle
   axis; on a clean recording it reports there is nothing to narrow *)
let test_bisect_narrows_divergence () =
  match Replay.record "compose" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (match Replay.bisect r with
    | Ok msg ->
      Alcotest.(check bool) "clean recording has nothing to narrow" true
        (contains msg "nothing to narrow")
    | Error e -> Alcotest.fail ("clean bisect failed: " ^ e));
    let tampered =
      { r with
        Replay.journal =
          flip r.Replay.journal ~from:"txn-commit" ~to_:"txn-abort " }
    in
    (match Replay.bisect tampered with
    | Ok report ->
      Alcotest.(check bool) "report names the divergence cycle" true
        (contains report "diverges at cycle");
      Alcotest.(check bool) "report diagnoses the bad event" true
        (contains report "txn")
    | Error e -> Alcotest.fail ("bisect on tampered recording: " ^ e))

(* --- history-derived lint rules ------------------------------------------ *)

let test_history_lint_on_replayed_runs () =
  List.iter
    (fun name ->
      match Replay.record name with
      | Error e -> Alcotest.fail e
      | Ok r ->
        (match Journal.import r.Replay.journal with
        | Ok events ->
          Alcotest.(check (list string)) (name ^ " lints clean") []
            (List.map
               (fun f -> f.Lint.rule)
               (Lint.history events))
        | Error e -> Alcotest.fail e))
    [ "compose"; "deadlock" ]

let test_page_hygiene_violation () =
  let sys = System.create () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let vmem = Kernel.vmem k in
  (* the clean path first: share, unshare, die — no finding *)
  let clean = System.new_domain sys "tidy" in
  let vaddr = Vmem.alloc_pages vmem kdom ~count:1 ~sharing:Vmem.Shared in
  let mapped =
    Vmem.map_shared vmem ~from_dom:kdom ~vaddr ~count:1 ~into:clean
      ~prot:Mmu.Read_only
  in
  Vmem.free_pages vmem clean ~vaddr:mapped ~count:1;
  Kernel.destroy_domain k clean;
  Alcotest.(check (list string)) "released share lints clean" []
    (List.map
       (fun f -> f.Lint.rule)
       (Lint.history (Journal.structural (journal_of sys))));
  (* now the violation: a domain dies still holding the mapping *)
  let leaky = System.new_domain sys "leaky" in
  ignore
    (Vmem.map_shared vmem ~from_dom:kdom ~vaddr ~count:1 ~into:leaky
       ~prot:Mmu.Read_only);
  Kernel.destroy_domain k leaky;
  let findings = Lint.history (Journal.structural (journal_of sys)) in
  match
    List.filter (fun f -> f.Lint.rule = "page-hygiene") findings
  with
  | [ f ] ->
    Alcotest.(check bool) "an Error-severity finding" true
      (f.Lint.severity = Lint.Error);
    Alcotest.(check bool) "names the dead holder" true
      (String.length f.Lint.detail > 0)
  | fs -> Alcotest.failf "expected one page-hygiene finding, got %d" (List.length fs)

let test_shadowing_warning () =
  let sys = System.create () in
  let k = System.kernel sys in
  let dir = Kernel.directory k in
  let path = Path.of_string "/services/shaded" in
  let base =
    System.install_exn sys (alloc_image "shaded") ~placement:System.Certified
      ~at:"/services/shaded"
  in
  (* a domain pins the original via a view override... *)
  let pinner = System.new_domain sys "pinner" in
  View.add_override pinner.Domain.view path (Instance.handle base);
  (* ...then an interposition swaps what the name resolves to *)
  let agent =
    System.install_exn sys (alloc_image "agent") ~placement:System.Certified
      ~at:"/services/shade-agent"
  in
  (match Directory.replace dir path agent with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Directory.bind_error_to_string e));
  let report =
    Lint.run ~machine:(Kernel.machine k) ~directory:dir ~events:(Kernel.events k)
      ~journal:(journal_of sys)
      ~domains:(fun () -> Kernel.domains k)
      ()
  in
  (match
     List.filter (fun f -> f.Lint.rule = "shadowing") report.Lint.findings
   with
  | [ f ] ->
    Alcotest.(check bool) "a Warning, not an Error" true
      (f.Lint.severity = Lint.Warning);
    Alcotest.(check string) "names the shadowed path" "/services/shaded"
      f.Lint.subject
  | fs -> Alcotest.failf "expected one shadowing finding, got %d" (List.length fs));
  (* removing the override clears the warning *)
  View.remove_override pinner.Domain.view path;
  let report' =
    Lint.run ~machine:(Kernel.machine k) ~directory:dir ~events:(Kernel.events k)
      ~domains:(fun () -> Kernel.domains k)
      ()
  in
  Alcotest.(check (list string)) "override removed, warning gone" []
    (List.map
       (fun f -> f.Lint.rule)
       (List.filter (fun f -> f.Lint.rule = "shadowing") report'.Lint.findings))

let () =
  Alcotest.run "pm_journal"
    [
      ( "journal",
        [
          Alcotest.test_case "tail ring wraps" `Quick test_tail_wrap;
          Alcotest.test_case "structural archive survives wrap" `Quick
            test_structural_archive_survives_wrap;
          Alcotest.test_case "full-mode compaction" `Quick test_full_compaction;
          Alcotest.test_case "mode switching" `Quick test_mode_switching;
          Alcotest.test_case "marks" `Quick test_mark;
        ] );
      ( "export",
        [
          Alcotest.test_case "round-trip with gnarly details" `Quick
            test_export_import_roundtrip;
          Alcotest.test_case "import rejects garbage" `Quick
            test_import_rejects_garbage;
          Alcotest.test_case "first divergence" `Quick test_first_divergence;
          Alcotest.test_case "rid round-trip" `Quick test_rid_roundtrip;
          Alcotest.test_case "adversarial marks round-trip" `Quick
            test_adversarial_marks_roundtrip;
          Alcotest.test_case "truncated import fails soft" `Quick
            test_truncated_import_fails_soft;
        ] );
      ( "service",
        [
          Alcotest.test_case "cross-domain /nucleus/journal" `Quick
            test_journal_service_cross_domain;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit" `Quick test_txn_commit;
          Alcotest.test_case "rollback at every step" `Quick
            test_txn_rollback_each_step;
        ] );
      ( "replay",
        [
          Alcotest.test_case "all scenarios reproduce" `Quick
            test_replay_all_scenarios;
          Alcotest.test_case "crashed run replays" `Quick test_replay_crashed_run;
          Alcotest.test_case "file round-trip and tamper detection" `Quick
            test_recording_roundtrip_and_tamper;
          Alcotest.test_case "bisect narrows a divergence" `Quick
            test_bisect_narrows_divergence;
        ] );
      ( "history-lint",
        [
          Alcotest.test_case "replayed runs lint clean" `Quick
            test_history_lint_on_replayed_runs;
          Alcotest.test_case "page-hygiene violation" `Quick
            test_page_hygiene_violation;
          Alcotest.test_case "shadowing warning" `Quick test_shadowing_warning;
        ] );
    ]
