(** Two Paramecium nodes with their network devices cross-wired.

    The original system served a parallel-programming group running on
    multiple workstations (the Amoeba lineage); this module provides the
    smallest distributed setting: two independently booted kernels whose
    NICs share a wire. Frames transmitted by one node are injected into
    the other on every {!step}. Both nodes trust the same certification
    authority, so certified components can be loaded on either side.

    Node A has network address {!addr_a}, node B {!addr_b}; both get an
    in-kernel certified networking bundle at boot. *)

type t

val addr_a : int
val addr_b : int

(** [create ?seed ?costs ()] boots both nodes (sharing one authority and
    delegate chain) and sets up certified in-kernel networking on each. *)
val create : ?seed:int -> ?costs:Pm_machine.Cost.t -> unit -> t

val node_a : t -> System.t
val node_b : t -> System.t

val net_a : t -> System.networking
val net_b : t -> System.networking

(** [step t ?ticks ()] advances both machines and ferries frames across
    the wire in both directions, [ticks] times. *)
val step : t -> ?ticks:int -> unit -> unit

(** [frames_delivered t] counts frames ferried since creation (both
    directions). *)
val frames_delivered : t -> int
