module Kernel = Pm_nucleus.Kernel
module Nic = Pm_machine.Nic

let addr_a = 1
let addr_b = 2

type t = {
  a : System.t;
  b : System.t;
  net_a : System.networking;
  net_b : System.networking;
  mutable ferried : int;
}

let create ?(seed = 0xC1) ?costs () =
  let a = System.create ~seed ?costs () in
  (* node B trusts the same certification authority *)
  let b = System.with_authority ?costs ~seed:(seed + 1) (System.authority a) in
  let net_a = System.setup_networking a ~placement:System.Certified ~addr:addr_a () in
  let net_b = System.setup_networking b ~placement:System.Certified ~addr:addr_b () in
  { a; b; net_a; net_b; ferried = 0 }

let node_a t = t.a
let node_b t = t.b
let net_a t = t.net_a
let net_b t = t.net_b

let step t ?(ticks = 1) () =
  for _ = 1 to ticks do
    Kernel.step (System.kernel t.a) ~ticks:1 ();
    Kernel.step (System.kernel t.b) ~ticks:1 ();
    let ferry frames into =
      List.iter
        (fun frame ->
          t.ferried <- t.ferried + 1;
          Nic.inject into frame)
        frames
    in
    ferry
      (Nic.take_transmitted (Kernel.nic (System.kernel t.a)))
      (Kernel.nic (System.kernel t.b));
    ferry
      (Nic.take_transmitted (Kernel.nic (System.kernel t.b)))
      (Kernel.nic (System.kernel t.a))
  done

let frames_delivered t = t.ferried
