lib/core/cluster.mli: Pm_machine System
