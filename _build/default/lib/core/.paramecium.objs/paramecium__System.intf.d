lib/core/system.mli: Pm_crypto Pm_machine Pm_nucleus Pm_obj Pm_secure
