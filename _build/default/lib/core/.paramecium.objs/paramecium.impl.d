lib/core/paramecium.ml: Cluster Pm_baselines Pm_bignum Pm_components Pm_crypto Pm_machine Pm_names Pm_nucleus Pm_obj Pm_secure Pm_threads Pm_vm System
