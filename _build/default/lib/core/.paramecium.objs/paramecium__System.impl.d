lib/core/system.ml: List Pm_baselines Pm_components Pm_crypto Pm_machine Pm_names Pm_nucleus Pm_obj Pm_secure Printf Result String
