lib/core/cluster.ml: List Pm_machine Pm_nucleus System
