lib/threads/sync.mli:
