lib/threads/sync.ml: Queue Scheduler
