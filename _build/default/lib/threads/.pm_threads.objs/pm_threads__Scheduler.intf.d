lib/threads/scheduler.mli: Pm_machine
