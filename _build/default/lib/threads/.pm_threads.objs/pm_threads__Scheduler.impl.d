lib/threads/scheduler.ml: Array Effect Logs Pm_machine Printexc Queue
