lib/nucleus/domain.ml: Format Pm_names
