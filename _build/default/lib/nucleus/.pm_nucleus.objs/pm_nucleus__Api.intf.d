lib/nucleus/api.mli: Certsvc Directory Domain Events Pm_machine Pm_names Pm_obj Pm_threads Vmem
