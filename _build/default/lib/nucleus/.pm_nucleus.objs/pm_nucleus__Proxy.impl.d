lib/nucleus/proxy.ml: Domain Fun List Pm_machine Pm_obj Printf String Vmem
