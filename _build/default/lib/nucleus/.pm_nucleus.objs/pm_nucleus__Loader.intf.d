lib/nucleus/loader.mli: Api Domain Pm_names Pm_obj Pm_secure
