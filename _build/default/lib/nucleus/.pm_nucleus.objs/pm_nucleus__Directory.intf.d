lib/nucleus/directory.mli: Domain Pm_machine Pm_names Pm_obj Vmem
