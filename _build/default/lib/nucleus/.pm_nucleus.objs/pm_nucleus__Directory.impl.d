lib/nucleus/directory.ml: Domain Hashtbl Pm_machine Pm_names Pm_obj Printf Proxy Vmem
