lib/nucleus/certsvc.mli: Pm_machine Pm_secure
