lib/nucleus/kernel.ml: Api Certsvc Directory Domain Events Hashtbl List Loader Option Pm_machine Pm_names Pm_obj Pm_secure Pm_threads Printf Vmem
