lib/nucleus/domain.mli: Format Pm_names
