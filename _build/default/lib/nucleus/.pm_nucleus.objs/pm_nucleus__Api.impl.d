lib/nucleus/api.ml: Certsvc Directory Domain Events Pm_machine Pm_obj Pm_threads Vmem
