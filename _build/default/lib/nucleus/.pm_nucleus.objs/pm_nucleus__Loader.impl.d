lib/nucleus/loader.ml: Api Certsvc Directory Domain Hashtbl List Pm_machine Pm_names Pm_obj Pm_secure Printf String
