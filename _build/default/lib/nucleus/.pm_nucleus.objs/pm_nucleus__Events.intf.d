lib/nucleus/events.mli: Domain Pm_machine Pm_threads
