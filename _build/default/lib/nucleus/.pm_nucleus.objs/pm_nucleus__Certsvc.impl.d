lib/nucleus/certsvc.ml: Pm_machine Pm_secure String
