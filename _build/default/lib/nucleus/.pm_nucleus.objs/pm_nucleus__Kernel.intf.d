lib/nucleus/kernel.mli: Api Certsvc Directory Domain Events Loader Pm_machine Pm_names Pm_obj Pm_secure Pm_threads Vmem
