lib/nucleus/vmem.mli: Domain Pm_machine
