lib/nucleus/vmem.ml: Domain Hashtbl List Pm_machine Printf String
