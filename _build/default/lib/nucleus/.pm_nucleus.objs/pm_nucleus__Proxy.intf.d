lib/nucleus/proxy.mli: Domain Pm_machine Pm_obj Vmem
