lib/nucleus/events.ml: Domain Fun Hashtbl List Pm_machine Pm_threads
