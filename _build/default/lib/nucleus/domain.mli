(** Protection domains.

    The nucleus's unit of granularity: every service "uses a protection
    domain or context as its unit of granularity". A domain couples an MMU
    context with a name-space view (inherited from the domain that created
    it) and a kind — exactly one domain is the kernel's. *)

type kind = Kernel | User

type t = {
  id : int;  (** equals the MMU context id *)
  name : string;
  kind : kind;
  view : Pm_names.View.t;  (** the domain's name-space view *)
  mutable alive : bool;
}

val is_kernel : t -> bool
val pp : Format.formatter -> t -> unit

(** [make ~id ~name ~kind ~view] — used by {!Kernel}; components receive
    domains, they do not forge them. *)
val make : id:int -> name:string -> kind:kind -> view:Pm_names.View.t -> t
