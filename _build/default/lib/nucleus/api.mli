(** The capability bundle handed to component constructors.

    A component sees the nucleus only through this record: the machine
    (for cycle accounting), the four services, the thread scheduler and
    its own domain's view. Everything a loaded component does — binding
    names, allocating pages or I/O space, registering event call-backs —
    goes through here. *)

type t = {
  machine : Pm_machine.Machine.t;
  registry : Pm_obj.Instance.t Pm_obj.Registry.t;
  events : Events.t;
  vmem : Vmem.t;
  directory : Directory.t;
  certification : Certsvc.t;
  sched : Pm_threads.Scheduler.t;
  kernel_domain : Domain.t;
}

(** [ctx api dom] is a call context issuing from [dom]. *)
val ctx : t -> Domain.t -> Pm_obj.Call_ctx.t

(** [bind api dom path] imports the object at [path] into [dom] (through
    [dom]'s view, proxying across domains). *)
val bind :
  t -> Domain.t -> Pm_names.Path.t -> (Pm_obj.Instance.t, Directory.bind_error) result

val bind_exn : t -> Domain.t -> Pm_names.Path.t -> Pm_obj.Instance.t
