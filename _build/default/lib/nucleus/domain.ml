type kind = Kernel | User

type t = {
  id : int;
  name : string;
  kind : kind;
  view : Pm_names.View.t;
  mutable alive : bool;
}

let is_kernel t = t.kind = Kernel

let pp fmt t =
  Format.fprintf fmt "%s#%d(%s)" t.name t.id
    (match t.kind with Kernel -> "kernel" | User -> "user")

let make ~id ~name ~kind ~view = { id; name; kind; view; alive = true }
