(** Cross-domain invocation proxies.

    "Importing an object from another protection domain, by means of the
    directory service, causes a proxy to appear. This proxy provides
    exactly the same set of interfaces as the original object, but each
    interface entry will cause a page fault when referenced. Control is
    then transferred to a per page fault handler which will map in
    arguments into the object's protection domain, switch context, and
    invoke the actual method. Return values are handled similarly."

    A proxy is an ordinary {!Pm_obj.Instance.t} living in the importer's
    domain whose every method charges the fault-entry cost, the per-word
    argument/result mapping cost, and the two context switches around the
    real invocation. Each proxy also owns one fault-hooked page in the
    importer's domain — the "interface entry" page the hardware would
    fault on. *)

(** [make ~machine ~vmem ~registry ~target ~importer] builds the proxy
    instance. Invoking it from any domain other than [importer] fails
    with [Domain_error]. *)
val make :
  machine:Pm_machine.Machine.t ->
  vmem:Vmem.t ->
  registry:Pm_obj.Instance.t Pm_obj.Registry.t ->
  target:Pm_obj.Instance.t ->
  importer:Domain.t ->
  Pm_obj.Instance.t

(** [is_proxy inst] recognizes proxy instances. *)
val is_proxy : Pm_obj.Instance.t -> bool
