type t = {
  machine : Pm_machine.Machine.t;
  registry : Pm_obj.Instance.t Pm_obj.Registry.t;
  events : Events.t;
  vmem : Vmem.t;
  directory : Directory.t;
  certification : Certsvc.t;
  sched : Pm_threads.Scheduler.t;
  kernel_domain : Domain.t;
}

let ctx t dom =
  Pm_obj.Call_ctx.make
    ~clock:(Pm_machine.Machine.clock t.machine)
    ~costs:(Pm_machine.Machine.costs t.machine)
    ~caller_domain:dom.Domain.id

let bind t dom path =
  Directory.bind t.directory (ctx t dom) ~view:dom.Domain.view ~domain:dom path

let bind_exn t dom path =
  Directory.bind_exn t.directory (ctx t dom) ~view:dom.Domain.view ~domain:dom path
