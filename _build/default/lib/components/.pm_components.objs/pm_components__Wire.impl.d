lib/components/wire.ml: Bytes Char Pm_obj Printf
