lib/components/images.ml: Allocator Codegen Netdrv Pm_nucleus Pm_obj Pm_secure Stack
