lib/components/stack.ml: Bytes Hashtbl List Logs Pm_machine Pm_names Pm_nucleus Pm_obj Pm_vm Printf Queue Result Wire
