lib/components/pager.ml: Array Option Pm_machine Pm_nucleus Pm_obj
