lib/components/netdrv.mli: Pm_nucleus Pm_obj
