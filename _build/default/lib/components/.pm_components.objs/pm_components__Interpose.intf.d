lib/components/interpose.mli: Pm_nucleus Pm_obj
