lib/components/interpose.ml: Bytes List Pm_names Pm_nucleus Pm_obj String
