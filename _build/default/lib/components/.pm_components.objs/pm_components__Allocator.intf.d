lib/components/allocator.mli: Pm_nucleus Pm_obj
