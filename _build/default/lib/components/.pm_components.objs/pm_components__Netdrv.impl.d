lib/components/netdrv.ml: Bytes Fun Hashtbl Logs Pm_machine Pm_names Pm_nucleus Pm_obj
