lib/components/simplefs.ml: Array Bytes Char List Pm_machine Pm_nucleus Pm_obj Printf String
