lib/components/codegen.mli:
