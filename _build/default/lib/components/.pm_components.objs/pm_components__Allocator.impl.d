lib/components/allocator.ml: Hashtbl List Pm_machine Pm_nucleus Pm_obj Printf Result
