lib/components/images.mli: Netdrv Pm_nucleus Pm_secure
