lib/components/rpc.mli: Pm_nucleus Pm_obj
