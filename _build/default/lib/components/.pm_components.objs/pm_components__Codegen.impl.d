lib/components/codegen.ml: Buffer Char Pm_crypto Printf String
