lib/components/simplefs.mli: Pm_machine Pm_nucleus Pm_obj
