lib/components/stack.mli: Pm_nucleus Pm_obj
