lib/components/rpc.ml: Bytes Char Hashtbl List Logs Pm_machine Pm_names Pm_nucleus Pm_obj Pm_threads Result String
