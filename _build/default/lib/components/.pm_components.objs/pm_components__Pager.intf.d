lib/components/pager.mli: Pm_machine Pm_nucleus Pm_obj
