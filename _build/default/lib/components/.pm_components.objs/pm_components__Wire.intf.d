lib/components/wire.mli: Pm_obj
