module Api = Pm_nucleus.Api
module Vmem = Pm_nucleus.Vmem
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx

type block = { off : int; size : int }

type state = {
  base : int; (* heap base vaddr *)
  mutable free : block list; (* sorted by offset *)
  live : (int, int) Hashtbl.t; (* addr -> size *)
  mutable free_bytes : int;
}

let align n = (n + 7) land lnot 7

let alloc st ctx size =
  let size = align (max size 8) in
  let rec take acc = function
    | [] -> None
    | b :: rest ->
      Call_ctx.work ctx 4 (* free-list hop *);
      if b.size >= size then begin
        let remainder =
          if b.size = size then [] else [ { off = b.off + size; size = b.size - size } ]
        in
        Some (b.off, List.rev_append acc (remainder @ rest))
      end
      else take (b :: acc) rest
  in
  match take [] st.free with
  | None -> None
  | Some (off, free) ->
    st.free <- free;
    st.free_bytes <- st.free_bytes - size;
    Hashtbl.replace st.live (st.base + off) size;
    Some (st.base + off)

(* insert back, coalescing with neighbours *)
let free st ctx addr =
  match Hashtbl.find_opt st.live addr with
  | None -> Error (Oerror.Fault (Printf.sprintf "free of unallocated address %#x" addr))
  | Some size ->
    Hashtbl.remove st.live addr;
    st.free_bytes <- st.free_bytes + size;
    let off = addr - st.base in
    let rec insert = function
      | [] -> [ { off; size } ]
      | b :: rest ->
        Call_ctx.work ctx 4;
        if off + size < b.off then { off; size } :: b :: rest
        else if off + size = b.off then { off; size = size + b.size } :: rest
        else if b.off + b.size = off then begin
          match rest with
          | next :: tail when b.off + b.size + size = next.off ->
            { off = b.off; size = b.size + size + next.size } :: tail
          | _ -> { off = b.off; size = b.size + size } :: rest
        end
        else b :: insert rest
    in
    st.free <- insert st.free;
    Ok ()

let create api dom ~heap_pages =
  if heap_pages <= 0 then invalid_arg "Allocator.create: need at least one page";
  let vmem = api.Api.vmem in
  let base = Vmem.alloc_pages vmem dom ~count:heap_pages ~sharing:Vmem.Exclusive in
  let heap_bytes = heap_pages * Pm_machine.Machine.page_size api.Api.machine in
  let st =
    { base; free = [ { off = 0; size = heap_bytes } ]; live = Hashtbl.create 64;
      free_bytes = heap_bytes }
  in
  let alloc_m ctx = function
    | [ Value.Int size ] when size > 0 ->
      (match alloc st ctx size with
      | Some addr -> Ok (Value.Int addr)
      | None -> Error (Oerror.Fault "allocator: out of memory"))
    | _ -> Error (Oerror.Type_error "alloc(size>0)")
  in
  let free_m ctx = function
    | [ Value.Int addr ] -> Result.map (fun () -> Value.Unit) (free st ctx addr)
    | _ -> Error (Oerror.Type_error "free(addr)")
  in
  let avail_m _ctx = function
    | [] -> Ok (Value.Int st.free_bytes)
    | _ -> Error (Oerror.Type_error "avail()")
  in
  let allocated_m _ctx = function
    | [] -> Ok (Value.Int (Hashtbl.length st.live))
    | _ -> Error (Oerror.Type_error "allocated()")
  in
  let iface =
    Iface.make ~name:"allocator"
      [
        Iface.meth ~name:"alloc" ~args:[ Vtype.Tint ] ~ret:Vtype.Tint alloc_m;
        Iface.meth ~name:"free" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit free_m;
        Iface.meth ~name:"avail" ~args:[] ~ret:Vtype.Tint avail_m;
        Iface.meth ~name:"allocated" ~args:[] ~ret:Vtype.Tint allocated_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"toolbox.allocator"
    ~domain:dom.Pm_nucleus.Domain.id [ iface ]
