let synthesize ~name ~size =
  if size < 0 then invalid_arg "Codegen.synthesize: negative size";
  (* expand a seed digest into [size] bytes, counter-mode style *)
  let buf = Buffer.create size in
  let counter = ref 0 in
  while Buffer.length buf < size do
    Buffer.add_string buf
      (Pm_crypto.Sha256.digest (Printf.sprintf "%s#%d" name !counter));
    incr counter
  done;
  String.sub (Buffer.contents buf) 0 size

let tamper code ~at =
  if at < 0 || at >= String.length code then invalid_arg "Codegen.tamper: out of range";
  String.mapi (fun i c -> if i = at then Char.chr (Char.code c lxor 1) else c) code
