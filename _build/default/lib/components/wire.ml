module Call_ctx = Pm_obj.Call_ctx

let check16 label v =
  if v < 0 || v > 0xffff then invalid_arg (Printf.sprintf "Wire: %s out of range" label)

let get16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

(* 16-bit ones' complement sum; charges one access per byte summed. *)
let sum16 ctx b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Wire.sum16: range out of bounds";
  Call_ctx.access ctx len;
  let acc = ref 0 in
  let i = ref off in
  let last = off + len in
  while !i < last do
    let word =
      if !i + 1 < last then get16 b !i else Char.code (Bytes.get b !i) lsl 8
    in
    acc := !acc + word;
    if !acc > 0xffff then acc := (!acc land 0xffff) + 1;
    i := !i + 2
  done;
  lnot !acc land 0xffff

(* charge for materializing [n] payload bytes into/out of a packet *)
let copy_cost ctx n = Call_ctx.access ctx n

module Frame = struct
  type t = { dst : int; src : int; payload : bytes }

  let header_len = 6
  let trailer_len = 2

  let build ctx ~dst ~src payload =
    check16 "frame dst" dst;
    check16 "frame src" src;
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen + trailer_len) in
    set16 b 0 dst;
    set16 b 2 src;
    set16 b 4 plen;
    Bytes.blit payload 0 b header_len plen;
    copy_cost ctx (header_len + plen);
    let fcs = sum16 ctx b ~off:0 ~len:(header_len + plen) in
    set16 b (header_len + plen) fcs;
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len + trailer_len then Error "frame: truncated"
    else begin
      Call_ctx.access ctx header_len;
      let dst = get16 b 0 and src = get16 b 2 and plen = get16 b 4 in
      if total <> header_len + plen + trailer_len then Error "frame: bad length"
      else begin
        let fcs = sum16 ctx b ~off:0 ~len:(header_len + plen) in
        if fcs <> get16 b (header_len + plen) then Error "frame: bad fcs"
        else begin
          let payload = Bytes.sub b header_len plen in
          copy_cost ctx plen;
          Ok { dst; src; payload }
        end
      end
    end
end

module Net = struct
  type t = { src : int; dst : int; ttl : int; proto : int; payload : bytes }

  let header_len = 10

  let build ctx ~src ~dst ~ttl ~proto payload =
    check16 "net src" src;
    check16 "net dst" dst;
    if ttl < 0 || ttl > 255 then invalid_arg "Wire: ttl out of range";
    if proto < 0 || proto > 255 then invalid_arg "Wire: proto out of range";
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen) in
    set16 b 0 src;
    set16 b 2 dst;
    Bytes.set b 4 (Char.chr ttl);
    Bytes.set b 5 (Char.chr proto);
    set16 b 6 (header_len + plen);
    set16 b 8 0;
    let ck = sum16 ctx b ~off:0 ~len:header_len in
    set16 b 8 ck;
    Bytes.blit payload 0 b header_len plen;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len then Error "net: truncated"
    else begin
      Call_ctx.access ctx header_len;
      let src = get16 b 0
      and dst = get16 b 2
      and ttl = Char.code (Bytes.get b 4)
      and proto = Char.code (Bytes.get b 5)
      and tlen = get16 b 6
      and ck = get16 b 8 in
      if tlen <> total then Error "net: bad length"
      else begin
        set16 b 8 0;
        let expect = sum16 ctx b ~off:0 ~len:header_len in
        set16 b 8 ck;
        if expect <> ck then Error "net: bad checksum"
        else begin
          let payload = Bytes.sub b header_len (total - header_len) in
          copy_cost ctx (total - header_len);
          Ok { src; dst; ttl; proto; payload }
        end
      end
    end

  let decrement_ttl ctx b =
    if Bytes.length b < header_len then Error "net: truncated"
    else begin
      let ttl = Char.code (Bytes.get b 4) in
      if ttl <= 1 then Error "net: ttl expired"
      else begin
        Bytes.set b 4 (Char.chr (ttl - 1));
        set16 b 8 0;
        let ck = sum16 ctx b ~off:0 ~len:header_len in
        set16 b 8 ck;
        Ok ()
      end
    end
end

module Transport = struct
  type t = { sport : int; dport : int; payload : bytes }

  let header_len = 8

  let build ctx ~sport ~dport payload =
    check16 "sport" sport;
    check16 "dport" dport;
    let plen = Bytes.length payload in
    let b = Bytes.create (header_len + plen) in
    set16 b 0 sport;
    set16 b 2 dport;
    set16 b 4 plen;
    Bytes.blit payload 0 b header_len plen;
    let ck = sum16 ctx b ~off:header_len ~len:plen in
    set16 b 6 ck;
    copy_cost ctx (header_len + plen);
    b

  let parse ctx b =
    let total = Bytes.length b in
    if total < header_len then Error "transport: truncated"
    else begin
      Call_ctx.access ctx header_len;
      let sport = get16 b 0 and dport = get16 b 2 and plen = get16 b 4 and ck = get16 b 6 in
      if total <> header_len + plen then Error "transport: bad length"
      else begin
        let expect = sum16 ctx b ~off:header_len ~len:plen in
        if expect <> ck then Error "transport: bad checksum"
        else begin
          let payload = Bytes.sub b header_len plen in
          copy_cost ctx plen;
          Ok { sport; dport; payload }
        end
      end
    end
end

let stack_overhead =
  Frame.header_len + Frame.trailer_len + Net.header_len + Transport.header_len
