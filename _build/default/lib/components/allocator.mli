(** Memory allocator component — one of the paper's examples of an
    "application component" built under the same architecture as system
    components.

    A first-fit free-list allocator over a heap of pages obtained from the
    memory service. Exported interface ["allocator"]:
    - [alloc(size:int) -> int] — address, or a [Fault] when exhausted
    - [free(addr:int) -> unit]
    - [avail() -> int] — free bytes
    - [allocated() -> int] — live allocation count *)

(** [create api dom ~heap_pages] builds the component in [dom]. *)
val create : Pm_nucleus.Api.t -> Pm_nucleus.Domain.t -> heap_pages:int -> Pm_obj.Instance.t
