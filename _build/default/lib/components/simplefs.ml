module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Machine = Pm_machine.Machine
module Physmem = Pm_machine.Physmem
module Disk = Pm_machine.Disk
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror
module Call_ctx = Pm_obj.Call_ctx

type error =
  | Not_found of string
  | Exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | No_space
  | File_too_large
  | Directory_not_empty of string
  | Bad_path of string

let error_to_string = function
  | Not_found p -> Printf.sprintf "%s: not found" p
  | Exists p -> Printf.sprintf "%s: already exists" p
  | Not_a_directory p -> Printf.sprintf "%s: not a directory" p
  | Is_a_directory p -> Printf.sprintf "%s: is a directory" p
  | No_space -> "no space left on device"
  | File_too_large -> "file too large (12 direct blocks)"
  | Directory_not_empty p -> Printf.sprintf "%s: directory not empty" p
  | Bad_path p -> Printf.sprintf "%s: malformed path" p

let magic = "PMFS"
let direct_blocks = 12
let inode_size = 64
let dirent_size = 32
let max_name = 28

type inode = {
  mutable used : bool;
  mutable is_dir : bool;
  mutable size : int;
  blocks : int array; (* 0 = unallocated *)
}

type t = {
  api : Api.t;
  disk : Disk.t;
  block_size : int;
  total_blocks : int;
  inode_table_blocks : int;
  data_start : int;
  bitmap : Bytes.t; (* one byte per block; 1 = in use *)
  inodes : inode array;
  scratch : int; (* physical address of the block-IO bounce frame *)
}

(* --- block IO through the bounce frame ------------------------------- *)

let read_block t n =
  Disk.read_sync t.disk ~block:n ~phys_addr:t.scratch;
  Bytes.of_string
    (Physmem.read_string (Machine.phys t.api.Api.machine) t.scratch t.block_size)

let write_block t n data =
  assert (Bytes.length data = t.block_size);
  Physmem.blit_string (Machine.phys t.api.Api.machine) (Bytes.to_string data) t.scratch;
  Disk.write_sync t.disk ~block:n ~phys_addr:t.scratch

(* --- metadata (de)serialization --------------------------------------- *)

let set32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let superblock_bitmap_offset = 64

let write_meta t =
  (* superblock + bitmap *)
  let sb = Bytes.make t.block_size '\000' in
  Bytes.blit_string magic 0 sb 0 4;
  set32 sb 4 t.total_blocks;
  set32 sb 8 t.inode_table_blocks;
  Bytes.blit t.bitmap 0 sb superblock_bitmap_offset t.total_blocks;
  write_block t 0 sb;
  (* inode table *)
  let per_block = t.block_size / inode_size in
  for ib = 0 to t.inode_table_blocks - 1 do
    let blk = Bytes.make t.block_size '\000' in
    for j = 0 to per_block - 1 do
      let idx = (ib * per_block) + j in
      if idx < Array.length t.inodes then begin
        let ino = t.inodes.(idx) in
        let off = j * inode_size in
        Bytes.set blk off (if ino.used then '\001' else '\000');
        Bytes.set blk (off + 1) (if ino.is_dir then '\001' else '\000');
        set32 blk (off + 2) ino.size;
        Array.iteri (fun k b -> set32 blk (off + 6 + (k * 4)) b) ino.blocks
      end
    done;
    write_block t (1 + ib) blk
  done

let read_meta t =
  let sb = read_block t 0 in
  if not (String.equal (Bytes.sub_string sb 0 4) magic) then
    invalid_arg "Simplefs.mount: bad superblock magic";
  Bytes.blit sb superblock_bitmap_offset t.bitmap 0 t.total_blocks;
  let per_block = t.block_size / inode_size in
  for ib = 0 to t.inode_table_blocks - 1 do
    let blk = read_block t (1 + ib) in
    for j = 0 to per_block - 1 do
      let idx = (ib * per_block) + j in
      if idx < Array.length t.inodes then begin
        let off = j * inode_size in
        let ino = t.inodes.(idx) in
        ino.used <- Bytes.get blk off = '\001';
        ino.is_dir <- Bytes.get blk (off + 1) = '\001';
        ino.size <- get32 blk (off + 2);
        Array.iteri (fun k _ -> ino.blocks.(k) <- get32 blk (off + 6 + (k * 4))) ino.blocks
      end
    done
  done

let sync = write_meta

(* --- allocation -------------------------------------------------------- *)

let alloc_block t =
  let rec scan n =
    if n >= t.total_blocks then None
    else if Bytes.get t.bitmap n = '\000' then begin
      Bytes.set t.bitmap n '\001';
      Some n
    end
    else scan (n + 1)
  in
  scan t.data_start

let free_block t n =
  assert (n >= t.data_start && n < t.total_blocks);
  Bytes.set t.bitmap n '\000'

let free_blocks t =
  let free = ref 0 in
  for n = t.data_start to t.total_blocks - 1 do
    if Bytes.get t.bitmap n = '\000' then incr free
  done;
  !free

let alloc_inode t =
  let rec scan i =
    if i >= Array.length t.inodes then None
    else if not t.inodes.(i).used then begin
      let ino = t.inodes.(i) in
      ino.used <- true;
      ino.is_dir <- false;
      ino.size <- 0;
      Array.fill ino.blocks 0 direct_blocks 0;
      Some i
    end
    else scan (i + 1)
  in
  scan 0

(* --- directory entries --------------------------------------------------- *)

type dirent = { slot : int; d_inode : int; name : string }

(* iterate the used entries of a directory inode *)
let dir_entries t ino =
  let entries = ref [] in
  let count = ino.size / dirent_size in
  let per_block = t.block_size / dirent_size in
  let current_block = ref (-1) in
  let blk = ref Bytes.empty in
  for slot = 0 to count - 1 do
    let bi = slot / per_block in
    if bi <> !current_block then begin
      current_block := bi;
      blk := read_block t ino.blocks.(bi)
    end;
    let off = slot mod per_block * dirent_size in
    if Bytes.get !blk off = '\001' then begin
      let d_inode = (Char.code (Bytes.get !blk (off + 1)) lsl 8) lor Char.code (Bytes.get !blk (off + 2)) in
      let nlen = Char.code (Bytes.get !blk (off + 3)) in
      let name = Bytes.sub_string !blk (off + 4) nlen in
      entries := { slot; d_inode; name } :: !entries
    end
  done;
  List.rev !entries

let write_dirent t ino slot entry =
  let per_block = t.block_size / dirent_size in
  let bi = slot / per_block in
  let blk = read_block t ino.blocks.(bi) in
  let off = slot mod per_block * dirent_size in
  (match entry with
  | None -> Bytes.set blk off '\000'
  | Some (d_inode, name) ->
    Bytes.set blk off '\001';
    Bytes.set blk (off + 1) (Char.chr ((d_inode lsr 8) land 0xff));
    Bytes.set blk (off + 2) (Char.chr (d_inode land 0xff));
    Bytes.set blk (off + 3) (Char.chr (String.length name));
    Bytes.fill blk (off + 4) max_name '\000';
    Bytes.blit_string name 0 blk (off + 4) (String.length name));
  write_block t ino.blocks.(bi) blk

(* add an entry, reusing a free slot or growing the directory *)
let add_dirent t ino d_inode name =
  let count = ino.size / dirent_size in
  let per_block = t.block_size / dirent_size in
  (* look for a freed slot *)
  let used_slots = List.map (fun e -> e.slot) (dir_entries t ino) in
  let rec find_free slot =
    if slot >= count then None
    else if List.mem slot used_slots then find_free (slot + 1)
    else Some slot
  in
  match find_free 0 with
  | Some slot ->
    write_dirent t ino slot (Some (d_inode, name));
    Ok ()
  | None ->
    let slot = count in
    let bi = slot / per_block in
    if bi >= direct_blocks then Error File_too_large
    else begin
      let ensure_block =
        if ino.blocks.(bi) <> 0 then Ok ()
        else begin
          match alloc_block t with
          | None -> Error No_space
          | Some b ->
            write_block t b (Bytes.make t.block_size '\000');
            ino.blocks.(bi) <- b;
            Ok ()
        end
      in
      match ensure_block with
      | Error _ as e -> e
      | Ok () ->
        ino.size <- (slot + 1) * dirent_size;
        write_dirent t ino slot (Some (d_inode, name));
        Ok ()
    end

(* --- path resolution -------------------------------------------------------- *)

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then Error (Bad_path path)
  else if String.equal path "/" then Ok []
  else begin
    let segs = String.split_on_char '/' (String.sub path 1 (String.length path - 1)) in
    if
      List.for_all
        (fun s -> String.length s > 0 && String.length s <= max_name)
        segs
    then Ok segs
    else Error (Bad_path path)
  end

(* resolve to an inode index *)
let resolve t path =
  match split_path path with
  | Error e -> Error e
  | Ok segs ->
    let rec walk idx = function
      | [] -> Ok idx
      | seg :: rest ->
        let ino = t.inodes.(idx) in
        if not ino.is_dir then Error (Not_a_directory path)
        else begin
          match List.find_opt (fun e -> String.equal e.name seg) (dir_entries t ino) with
          | Some e -> walk e.d_inode rest
          | None -> Error (Not_found path)
        end
    in
    walk 0 segs

(* resolve the parent directory and final segment *)
let resolve_parent t path =
  match split_path path with
  | Error e -> Error e
  | Ok [] -> Error (Bad_path path)
  | Ok segs ->
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | s :: rest -> split_last (s :: acc) rest
    in
    let dirsegs, last = split_last [] segs in
    let dirpath = "/" ^ String.concat "/" dirsegs in
    (match resolve t dirpath with
    | Error e -> Error e
    | Ok idx ->
      if not t.inodes.(idx).is_dir then Error (Not_a_directory dirpath)
      else Ok (idx, last))

(* --- core operations ----------------------------------------------------------- *)

let charge_meta ctx = Call_ctx.work ctx 50

let make_node t ctx path ~is_dir =
  charge_meta ctx;
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (parent_idx, name) ->
    let parent = t.inodes.(parent_idx) in
    if List.exists (fun e -> String.equal e.name name) (dir_entries t parent) then
      Error (Exists path)
    else begin
      match alloc_inode t with
      | None -> Error No_space
      | Some idx ->
        t.inodes.(idx).is_dir <- is_dir;
        (match add_dirent t parent idx name with
        | Error e ->
          t.inodes.(idx).used <- false;
          Error e
        | Ok () ->
          sync t;
          Ok ())
    end

let mkdir t ctx path = make_node t ctx path ~is_dir:true
let create t ctx path = make_node t ctx path ~is_dir:false

let write t ctx path ~offset data =
  charge_meta ctx;
  if offset < 0 then Error (Bad_path "negative offset")
  else begin
    match resolve t path with
    | Error e -> Error e
    | Ok idx ->
      let ino = t.inodes.(idx) in
      if ino.is_dir then Error (Is_a_directory path)
      else begin
        let len = Bytes.length data in
        if offset + len > direct_blocks * t.block_size then Error File_too_large
        else begin
          Call_ctx.access ctx len;
          let pos = ref 0 in
          let err = ref None in
          while !pos < len && !err = None do
            let addr = offset + !pos in
            let bi = addr / t.block_size in
            let boff = addr mod t.block_size in
            if ino.blocks.(bi) = 0 then begin
              match alloc_block t with
              | None -> err := Some No_space
              | Some b ->
                write_block t b (Bytes.make t.block_size '\000');
                ino.blocks.(bi) <- b
            end;
            if !err = None then begin
              let chunk = min (len - !pos) (t.block_size - boff) in
              let blk = read_block t ino.blocks.(bi) in
              Bytes.blit data !pos blk boff chunk;
              write_block t ino.blocks.(bi) blk;
              pos := !pos + chunk
            end
          done;
          (match !err with
          | Some e ->
            ino.size <- max ino.size (offset + !pos);
            sync t;
            Error e
          | None ->
            ino.size <- max ino.size (offset + len);
            sync t;
            Ok len)
        end
      end
  end

let read t ctx path ~offset ~len =
  charge_meta ctx;
  if offset < 0 || len < 0 then Error (Bad_path "negative offset/len")
  else begin
    match resolve t path with
    | Error e -> Error e
    | Ok idx ->
      let ino = t.inodes.(idx) in
      if ino.is_dir then Error (Is_a_directory path)
      else begin
        let len = max 0 (min len (ino.size - offset)) in
        Call_ctx.access ctx len;
        let out = Bytes.create len in
        let pos = ref 0 in
        while !pos < len do
          let addr = offset + !pos in
          let bi = addr / t.block_size in
          let boff = addr mod t.block_size in
          let chunk = min (len - !pos) (t.block_size - boff) in
          if ino.blocks.(bi) = 0 then Bytes.fill out !pos chunk '\000'
          else begin
            let blk = read_block t ino.blocks.(bi) in
            Bytes.blit blk boff out !pos chunk
          end;
          pos := !pos + chunk
        done;
        Ok out
      end
  end

let remove t ctx path =
  charge_meta ctx;
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (parent_idx, name) ->
    let parent = t.inodes.(parent_idx) in
    (match List.find_opt (fun e -> String.equal e.name name) (dir_entries t parent) with
    | None -> Error (Not_found path)
    | Some entry ->
      let ino = t.inodes.(entry.d_inode) in
      if ino.is_dir && dir_entries t ino <> [] then Error (Directory_not_empty path)
      else begin
        Array.iteri
          (fun k b ->
            if b <> 0 then begin
              free_block t b;
              ino.blocks.(k) <- 0
            end)
          ino.blocks;
        ino.used <- false;
        ino.size <- 0;
        write_dirent t parent entry.slot None;
        sync t;
        Ok ()
      end)

let list t ctx path =
  charge_meta ctx;
  match resolve t path with
  | Error e -> Error e
  | Ok idx ->
    let ino = t.inodes.(idx) in
    if not ino.is_dir then Error (Not_a_directory path)
    else Ok (List.sort String.compare (List.map (fun e -> e.name) (dir_entries t ino)))

let stat t ctx path =
  charge_meta ctx;
  match resolve t path with
  | Error e -> Error e
  | Ok idx ->
    let ino = t.inodes.(idx) in
    Ok (ino.is_dir, ino.size)

(* --- construction --------------------------------------------------------------- *)

let make_t api ~disk =
  let machine = api.Api.machine in
  let block_size = Machine.page_size machine in
  let total_blocks = Disk.blocks disk in
  if total_blocks > block_size - superblock_bitmap_offset then
    invalid_arg "Simplefs: disk too large for the superblock bitmap";
  let inode_table_blocks = 1 in
  let inode_count = inode_table_blocks * (block_size / inode_size) in
  let scratch_frame = Physmem.alloc (Machine.phys machine) in
  {
    api;
    disk;
    block_size;
    total_blocks;
    inode_table_blocks;
    data_start = 1 + inode_table_blocks;
    bitmap = Bytes.make total_blocks '\000';
    inodes =
      Array.init inode_count (fun _ ->
          { used = false; is_dir = false; size = 0; blocks = Array.make direct_blocks 0 });
    scratch = scratch_frame * block_size;
  }

let format api ~disk =
  let t = make_t api ~disk in
  (* reserve metadata blocks *)
  for n = 0 to t.data_start - 1 do
    Bytes.set t.bitmap n '\001'
  done;
  (* root directory: inode 0, no data yet *)
  t.inodes.(0).used <- true;
  t.inodes.(0).is_dir <- true;
  write_meta t;
  t

let mount api ~disk =
  let t = make_t api ~disk in
  read_meta t;
  t

(* --- object wrapper --------------------------------------------------------------- *)

let lift e = Error (Oerror.Fault (error_to_string e))

let instance api dom t =
  let str1 f ctx = function
    | [ Value.Str p ] -> (match f t ctx p with Ok () -> Ok Value.Unit | Error e -> lift e)
    | _ -> Error (Oerror.Type_error "expected (str)")
  in
  let write_m ctx = function
    | [ Value.Str p; Value.Int off; Value.Blob data ] ->
      (match write t ctx p ~offset:off data with
      | Ok n -> Ok (Value.Int n)
      | Error e -> lift e)
    | _ -> Error (Oerror.Type_error "write(str, int, blob)")
  in
  let read_m ctx = function
    | [ Value.Str p; Value.Int off; Value.Int len ] ->
      (match read t ctx p ~offset:off ~len with
      | Ok b -> Ok (Value.Blob b)
      | Error e -> lift e)
    | _ -> Error (Oerror.Type_error "read(str, int, int)")
  in
  let list_m ctx = function
    | [ Value.Str p ] ->
      (match list t ctx p with
      | Ok names -> Ok (Value.List (List.map (fun n -> Value.Str n) names))
      | Error e -> lift e)
    | _ -> Error (Oerror.Type_error "list(str)")
  in
  let stat_m ctx = function
    | [ Value.Str p ] ->
      (match stat t ctx p with
      | Ok (is_dir, size) ->
        Ok (Value.Pair (Value.Int (if is_dir then 1 else 0), Value.Int size))
      | Error e -> lift e)
    | _ -> Error (Oerror.Type_error "stat(str)")
  in
  let sync_m _ctx = function
    | [] ->
      sync t;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "sync()")
  in
  let iface =
    Iface.make ~name:"fs"
      [
        Iface.meth ~name:"mkdir" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit (str1 mkdir);
        Iface.meth ~name:"create" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit (str1 create);
        Iface.meth ~name:"write" ~args:[ Vtype.Tstr; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tint write_m;
        Iface.meth ~name:"read" ~args:[ Vtype.Tstr; Vtype.Tint; Vtype.Tint ]
          ~ret:Vtype.Tblob read_m;
        Iface.meth ~name:"remove" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tunit (str1 remove);
        Iface.meth ~name:"list" ~args:[ Vtype.Tstr ] ~ret:(Vtype.Tlist Vtype.Tstr) list_m;
        Iface.meth ~name:"stat" ~args:[ Vtype.Tstr ]
          ~ret:(Vtype.Tpair (Vtype.Tint, Vtype.Tint)) stat_m;
        Iface.meth ~name:"sync" ~args:[] ~ret:Vtype.Tunit sync_m;
      ]
  in
  Instance.create api.Api.registry ~class_name:"toolbox.simplefs" ~domain:dom.Domain.id
    [ iface ]
