module Api = Pm_nucleus.Api
module Domain = Pm_nucleus.Domain
module Vmem = Pm_nucleus.Vmem
module Machine = Pm_machine.Machine
module Mmu = Pm_machine.Mmu
module Physmem = Pm_machine.Physmem
module Disk = Pm_machine.Disk
module Clock = Pm_machine.Clock
module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Value = Pm_obj.Value
module Vtype = Pm_obj.Vtype
module Oerror = Pm_obj.Oerror

type page_state = {
  mutable frame : int option; (* resident frame, if any *)
  mutable referenced : bool; (* CLOCK reference bit, set on fault *)
  mutable dirty : bool;
  mutable ever_written : bool; (* whether the backing block holds data *)
}

type t = {
  api : Api.t;
  dom : Domain.t;
  disk : Disk.t;
  base : int;
  page_size : int;
  budget : int;
  first_block : int;
  pages : page_state array;
  mutable hand : int; (* CLOCK hand, index into [pages] *)
  mutable resident : int;
  mutable faults : int;
  mutable pageins : int;
  mutable pageouts : int;
  mutable inst : Instance.t option;
}

let page_index t vaddr = (vaddr - t.base) / t.page_size
let vaddr_of t idx = t.base + (idx * t.page_size)
let block_of t idx = t.first_block + idx

let phys_of_frame t frame = frame * t.page_size

(* CLOCK second-chance: sweep until an unreferenced resident page turns
   up, clearing reference bits along the way. *)
let pick_victim t =
  let n = Array.length t.pages in
  let rec sweep remaining =
    if remaining = 0 then None
    else begin
      let idx = t.hand in
      t.hand <- (t.hand + 1) mod n;
      let p = t.pages.(idx) in
      match p.frame with
      | None -> sweep (remaining - 1)
      | Some _ when p.referenced ->
        p.referenced <- false;
        sweep (remaining - 1)
      | Some _ -> Some idx
    end
  in
  (* two full sweeps guarantee a victim when anything is resident *)
  match sweep (2 * n) with
  | Some idx -> idx
  | None -> invalid_arg "Pager: no resident page to evict"

let evict t idx =
  let p = t.pages.(idx) in
  match p.frame with
  | None -> ()
  | Some frame ->
    if p.dirty then begin
      Disk.write_sync t.disk ~block:(block_of t idx) ~phys_addr:(phys_of_frame t frame);
      t.pageouts <- t.pageouts + 1;
      p.ever_written <- true;
      p.dirty <- false
    end;
    ignore (Vmem.unmap_page t.api.Api.vmem t.dom ~vaddr:(vaddr_of t idx));
    Physmem.release (Machine.phys t.api.Api.machine) frame;
    p.frame <- None;
    t.resident <- t.resident - 1

let page_in t idx =
  if t.resident >= t.budget then evict t (pick_victim t);
  let phys = Machine.phys t.api.Api.machine in
  let frame = Physmem.alloc phys in
  let p = t.pages.(idx) in
  if p.ever_written then begin
    Disk.read_sync t.disk ~block:(block_of t idx) ~phys_addr:(phys_of_frame t frame);
    t.pageins <- t.pageins + 1
  end;
  (* map read-only: the first write faults and flips to dirty *)
  Vmem.map_page t.api.Api.vmem t.dom ~vaddr:(vaddr_of t idx) ~frame ~prot:Mmu.Read_only;
  p.frame <- Some frame;
  p.referenced <- true;
  t.resident <- t.resident + 1

(* the per-page fault call-back: resolve non-resident and write-upgrade
   faults; anything else is a genuine protection error *)
let handle_fault t (fault : Mmu.fault) =
  let idx = page_index t fault.Mmu.vaddr in
  if idx < 0 || idx >= Array.length t.pages then false
  else begin
    t.faults <- t.faults + 1;
    Clock.count (Machine.clock t.api.Api.machine) "pager_fault";
    let p = t.pages.(idx) in
    match (fault.Mmu.reason, fault.Mmu.access, p.frame) with
    | Mmu.Unmapped, _, None ->
      page_in t idx;
      if fault.Mmu.access = Mmu.Write then begin
        p.dirty <- true;
        Vmem.set_page_prot t.api.Api.vmem t.dom ~vaddr:(vaddr_of t idx) Mmu.Read_write
      end;
      true
    | Mmu.Protection, Mmu.Write, Some _ ->
      p.dirty <- true;
      p.referenced <- true;
      Vmem.set_page_prot t.api.Api.vmem t.dom ~vaddr:(vaddr_of t idx) Mmu.Read_write;
      true
    | _ -> false
  end

let flush t =
  let written = ref 0 in
  Array.iteri
    (fun idx p ->
      match p.frame with
      | Some frame when p.dirty ->
        Disk.write_sync t.disk ~block:(block_of t idx) ~phys_addr:(phys_of_frame t frame);
        p.ever_written <- true;
        p.dirty <- false;
        Vmem.set_page_prot t.api.Api.vmem t.dom ~vaddr:(vaddr_of t idx) Mmu.Read_only;
        incr written
      | _ -> ())
    t.pages;
  !written

let make_instance t =
  let base_m _ctx = function
    | [] -> Ok (Value.Int t.base)
    | _ -> Error (Oerror.Type_error "base()")
  in
  let pages_m _ctx = function
    | [] -> Ok (Value.Int (Array.length t.pages))
    | _ -> Error (Oerror.Type_error "pages()")
  in
  let stats_m _ctx = function
    | [] ->
      Ok
        (Value.List
           [ Value.Int t.faults; Value.Int t.pageins; Value.Int t.pageouts;
             Value.Int t.resident ])
    | _ -> Error (Oerror.Type_error "stats()")
  in
  let flush_m _ctx = function
    | [] -> Ok (Value.Int (flush t))
    | _ -> Error (Oerror.Type_error "flush()")
  in
  let iface =
    Iface.make ~name:"pager"
      [
        Iface.meth ~name:"base" ~args:[] ~ret:Vtype.Tint base_m;
        Iface.meth ~name:"pages" ~args:[] ~ret:Vtype.Tint pages_m;
        Iface.meth ~name:"stats" ~args:[] ~ret:(Vtype.Tlist Vtype.Tint) stats_m;
        Iface.meth ~name:"flush" ~args:[] ~ret:Vtype.Tint flush_m;
      ]
  in
  Instance.create t.api.Api.registry ~class_name:"toolbox.pager"
    ~domain:t.dom.Domain.id [ iface ]

let create api dom ~disk ~resident_budget ~backing_pages ~first_block =
  if resident_budget <= 0 then invalid_arg "Pager.create: zero resident budget";
  if backing_pages <= 0 then invalid_arg "Pager.create: zero backing pages";
  if first_block < 0 || first_block + backing_pages > Disk.blocks disk then
    invalid_arg "Pager.create: backing blocks exceed disk capacity";
  let vmem = api.Api.vmem in
  let base = Vmem.reserve_pages vmem dom ~count:backing_pages in
  let t =
    {
      api;
      dom;
      disk;
      base;
      page_size = Machine.page_size api.Api.machine;
      budget = resident_budget;
      first_block;
      pages =
        Array.init backing_pages (fun _ ->
            { frame = None; referenced = false; dirty = false; ever_written = false });
      hand = 0;
      resident = 0;
      faults = 0;
      pageins = 0;
      pageouts = 0;
      inst = None;
    }
  in
  for idx = 0 to backing_pages - 1 do
    Vmem.set_fault_callback vmem dom ~vaddr:(vaddr_of t idx) (handle_fault t)
  done;
  t.inst <- Some (make_instance t);
  t

let instance t = Option.get t.inst
let base t = t.base
let resident t = t.resident
let faults t = t.faults
let pageins t = t.pageins
let pageouts t = t.pageouts
