(** Demand pager — a virtual-memory implementation *outside* the nucleus.

    §3 lists "virtual memory implementations" among the components that
    need not live in the kernel: the memory service supplies mechanism
    (reserved ranges, per-page fault call-backs, raw map/unmap) and this
    component supplies policy. It manages a region of [backing_pages]
    virtual pages in one domain, keeps at most [resident_budget] of them
    in physical frames, and pages the rest to the simulated disk.

    Policy details:
    - page-in maps the page read-only; the first write faults again and
      upgrades to read-write, marking the page dirty — so clean pages are
      discarded for free and only dirty pages are written back;
    - eviction is CLOCK (second chance): the hand clears reference bits
      (set on every fault for the page) and evicts the first unreferenced
      page;
    - disk traffic uses the synchronous interface (a fault handler cannot
      wait for device ticks).

    Exported interface ["pager"]:
    - [base() -> int], [pages() -> int] — the managed region
    - [stats() -> list] — [faults; pageins; pageouts; resident]
    - [flush() -> int] — write back every dirty resident page, returning
      how many were written *)

type t

(** [create api dom ~disk ~resident_budget ~backing_pages ~first_block]
    reserves the region, registers its fault call-backs and returns the
    pager. Disk blocks [first_block .. first_block+backing_pages-1] back
    the region. Raises [Invalid_argument] on a zero budget or if the
    blocks don't fit on the disk. *)
val create :
  Pm_nucleus.Api.t ->
  Pm_nucleus.Domain.t ->
  disk:Pm_machine.Disk.t ->
  resident_budget:int ->
  backing_pages:int ->
  first_block:int ->
  t

(** [instance t] is the pager as an object. *)
val instance : t -> Pm_obj.Instance.t

(** [base t] is the managed region's base virtual address in the client
    domain. *)
val base : t -> int

val resident : t -> int
val faults : t -> int
val pageins : t -> int
val pageouts : t -> int
