(** Loader images for the toolbox components.

    Bridges the components to the repository/loader: each builder pairs a
    component constructor with synthesized object code ({!Codegen}) and
    metadata, producing a {!Pm_nucleus.Loader.image}. [certify] runs an
    image through a certification authority's delegate chain and attaches
    the resulting certificate (when one was granted). *)

(** [image ~name ~size ?author ?type_safe ?proof_annotated ?tags construct]
    makes an uncertified image with deterministic pseudo object code. *)
val image :
  name:string ->
  size:int ->
  ?author:string ->
  ?type_safe:bool ->
  ?proof_annotated:bool ->
  ?tags:string list ->
  Pm_nucleus.Loader.constructor ->
  Pm_nucleus.Loader.image

(** [certify authority ~now img] asks the authority's delegate chain to
    certify the image; returns the image with the certificate attached
    (unchanged if every delegate declined) and the certification trail. *)
val certify :
  Pm_secure.Authority.t ->
  now:int ->
  Pm_nucleus.Loader.image ->
  Pm_nucleus.Loader.image * (string * Pm_secure.Authority.verdict) list

(** Ready-made constructors. *)

val netdrv_construct : ?config:Netdrv.config -> unit -> Pm_nucleus.Loader.constructor

(** The stack constructor returns the composition's instance. *)
val stack_construct : addr:int -> driver_path:string -> Pm_nucleus.Loader.constructor

val allocator_construct : heap_pages:int -> Pm_nucleus.Loader.constructor
