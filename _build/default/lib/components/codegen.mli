(** Synthetic component object code.

    Certificates digest real bytes; since our components are OCaml
    closures, each loadable component carries a deterministic pseudo
    object-code image derived from its name and declared size. Tamper
    tests flip bytes in these images. *)

(** [synthesize ~name ~size] is a deterministic [size]-byte image. *)
val synthesize : name:string -> size:int -> string

(** [tamper code ~at] flips one bit of byte [at]. *)
val tamper : string -> at:int -> string
