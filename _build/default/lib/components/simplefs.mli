(** A small inode filesystem over the block disk.

    Another entry in the component toolbox: a filesystem is exactly the
    kind of operating-system component the paper wants outside the
    nucleus, loadable into whichever protection domain a configuration
    chooses. All metadata lives on the disk (superblock + inode table +
    allocation bitmap), so a filesystem survives unmount and remount.

    Layout (block size = machine page size):
    - block 0: superblock (magic, geometry) + data-block bitmap
    - blocks 1..i: inode table (64-byte inodes, 12 direct block pointers
      each — max file size 12 blocks)
    - remaining blocks: file/directory data

    Directories are files of fixed 32-byte entries; paths are the usual
    ["/a/b/c"] strings resolved from the root directory (inode 0).

    Exported interface ["fs"]:
    - [mkdir(path:str) -> unit], [create(path:str) -> unit]
    - [write(path:str, offset:int, data:blob) -> int] — bytes written
    - [read(path:str, offset:int, len:int) -> blob]
    - [remove(path:str) -> unit] — files and empty directories
    - [list(path:str) -> list] of entry names
    - [stat(path:str) -> (kind, size)] — kind 0 = file, 1 = directory
    - [sync() -> unit] — flush cached metadata to disk

    Byte traffic charges {!Pm_obj.Call_ctx.access} like every other
    component, so a sandboxed filesystem pays the SFI tax. *)

type t

type error =
  | Not_found of string
  | Exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | No_space
  | File_too_large
  | Directory_not_empty of string
  | Bad_path of string

val error_to_string : error -> string

(** [format api ~disk] writes a fresh filesystem and mounts it. *)
val format : Pm_nucleus.Api.t -> disk:Pm_machine.Disk.t -> t

(** [mount api ~disk] reads an existing filesystem's metadata. Raises
    [Invalid_argument] if the superblock magic is wrong. *)
val mount : Pm_nucleus.Api.t -> disk:Pm_machine.Disk.t -> t

(** [sync t] writes all cached metadata back to disk. *)
val sync : t -> unit

(** {1 Direct API} (the object interface wraps these) *)

val mkdir : t -> Pm_obj.Call_ctx.t -> string -> (unit, error) result
val create : t -> Pm_obj.Call_ctx.t -> string -> (unit, error) result

val write :
  t -> Pm_obj.Call_ctx.t -> string -> offset:int -> bytes -> (int, error) result

val read :
  t -> Pm_obj.Call_ctx.t -> string -> offset:int -> len:int -> (bytes, error) result

val remove : t -> Pm_obj.Call_ctx.t -> string -> (unit, error) result
val list : t -> Pm_obj.Call_ctx.t -> string -> (string list, error) result

(** [stat t ctx path] is [(is_dir, size)]. *)
val stat : t -> Pm_obj.Call_ctx.t -> string -> (bool * int, error) result

(** [instance api dom t] builds the object wrapper in [dom]. *)
val instance : Pm_nucleus.Api.t -> Pm_nucleus.Domain.t -> t -> Pm_obj.Instance.t

(** [free_blocks t] — observability for tests. *)
val free_blocks : t -> int
