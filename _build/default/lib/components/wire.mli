(** Packet wire formats for the protocol-stack component.

    Three layers, each with explicit header build/parse and a 16-bit ones'
    complement checksum. Every byte touched is recorded through
    {!Pm_obj.Call_ctx.access}, so per-packet protocol work scales with
    packet size and is visible to the SFI sandbox baseline.

    All integer fields are big-endian.

    - Frame: [dst(2) src(2) len(2)] payload [fcs(2)] — fcs covers header
      and payload.
    - Net: [src(2) dst(2) ttl(1) proto(1) total_len(2) cksum(2)] payload —
      cksum covers the header.
    - Transport: [sport(2) dport(2) len(2) cksum(2)] payload — cksum
      covers the payload. *)

val sum16 : Pm_obj.Call_ctx.t -> bytes -> off:int -> len:int -> int

module Frame : sig
  type t = { dst : int; src : int; payload : bytes }

  val header_len : int
  val trailer_len : int

  (** [build ctx ~dst ~src payload] raises [Invalid_argument] if an
      address is out of 16-bit range. *)
  val build : Pm_obj.Call_ctx.t -> dst:int -> src:int -> bytes -> bytes

  val parse : Pm_obj.Call_ctx.t -> bytes -> (t, string) result
end

module Net : sig
  type t = { src : int; dst : int; ttl : int; proto : int; payload : bytes }

  val header_len : int

  val build :
    Pm_obj.Call_ctx.t -> src:int -> dst:int -> ttl:int -> proto:int -> bytes -> bytes

  val parse : Pm_obj.Call_ctx.t -> bytes -> (t, string) result

  (** [decrement_ttl ctx raw] rewrites the TTL and checksum in place for
      forwarding; [Error] when the TTL hits zero. *)
  val decrement_ttl : Pm_obj.Call_ctx.t -> bytes -> (unit, string) result
end

module Transport : sig
  type t = { sport : int; dport : int; payload : bytes }

  val header_len : int

  val build : Pm_obj.Call_ctx.t -> sport:int -> dport:int -> bytes -> bytes
  val parse : Pm_obj.Call_ctx.t -> bytes -> (t, string) result
end

(** Total header+trailer overhead of the full stack, in bytes. *)
val stack_overhead : int
