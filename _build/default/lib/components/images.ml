module Loader = Pm_nucleus.Loader
module Meta = Pm_secure.Meta
module Authority = Pm_secure.Authority

let image ~name ~size ?author ?type_safe ?proof_annotated ?tags construct =
  let meta = Meta.make ?author ?type_safe ?proof_annotated ?tags ~name ~size () in
  let code = Codegen.synthesize ~name ~size in
  { Loader.meta; code; cert = None; construct }

let certify authority ~now img =
  let outcome = Authority.certify authority img.Loader.meta ~code:img.Loader.code ~now in
  let img =
    match outcome.Authority.certificate with
    | Some cert -> { img with Loader.cert = Some cert }
    | None -> img
  in
  (img, outcome.Authority.trail)

let netdrv_construct ?config () api dom = Netdrv.create api dom ?config ()

let stack_construct ~addr ~driver_path api dom =
  Pm_obj.Composite.instance (Stack.create api dom ~addr ~driver_path)

let allocator_construct ~heap_pages api dom = Allocator.create api dom ~heap_pages
