(** Kernel-side certificate validation.

    This is the pure decision procedure behind the nucleus's certification
    service: given the trusted root, the known delegation statements and a
    revocation list, decide whether a certificate authorizes a concrete
    piece of code to enter the kernel protection domain. The checks, in
    order:

    + the code's digest matches the certificate (tamper detection),
    + the certificate signature verifies under the signer's key,
    + the signer speaks for the trusted root through a chain of live,
      well-signed, unrevoked grants in the certification scope.

    "After a component's certificate is validated by the kernel it does
    not require any further software checks." *)

type failure =
  | Digest_mismatch
  | Bad_signature
  | Untrusted_signer of string
  | Revoked_principal of string
  | Expired_grant of string

type decision = Valid of { chain_length : int } | Invalid of failure

type t

(** [create ~root] trusts [root] as the certification authority. *)
val create : root:Principal.t -> t

val root : t -> Principal.t

(** [add_grant t g] records a delegation statement (checked lazily during
    validation). *)
val add_grant : t -> Delegation.t -> unit

val grants : t -> Delegation.t list

(** [revoke t principal_id] bars a principal; certificates it signed and
    chains through it stop validating. *)
val revoke : t -> string -> unit

val is_revoked : t -> string -> bool

(** [validate t cert ~code ~now] runs the full decision procedure. *)
val validate : t -> Certificate.t -> code:string -> now:int -> decision

val failure_to_string : failure -> string
