(** The certification authority and its ordered delegates.

    "The certification authority can choose to delegate its certification
    powers to subordinates ... These subordinates may be ordered in
    preference and provide an escape hatch if one of the subordinates
    fails to certify." A delegate is a principal with a policy (a function
    of the component's {!Meta.t}), a simulated certification latency (a
    prover is slow, an administrator slower still, a compiler fast), and a
    key pair to sign with.

    Certification happens off-line: [certify] walks the delegates in
    preference order, asking each; [Cannot_decide] and [Reject] both fall
    through to the next delegate (the escape hatch), and the trail of
    verdicts is returned for inspection. *)

type verdict = Accept | Reject of string | Cannot_decide

type delegate = {
  principal : Principal.t;
  keypair : Pm_crypto.Rsa.keypair;
  policy : Meta.t -> verdict;
  latency : int;  (** simulated certification time, in cycles *)
}

type t

(** Outcome of one certification attempt. *)
type outcome = {
  certificate : Certificate.t option;
  trail : (string * verdict) list;  (** delegate name, verdict, in order *)
  elapsed : int;  (** summed latency of all consulted delegates *)
}

(** [create rng ~name ~key_bits] makes an authority with a fresh CA key. *)
val create : Pm_crypto.Prng.t -> name:string -> key_bits:int -> t

val ca : t -> Principal.t

(** [grants t] lists every delegation statement issued so far; the kernel
    validator needs these to reconstruct speaks-for chains. *)
val grants : t -> Delegation.t list

(** [add_delegate t rng ~name ~policy ~latency ?expires ()] creates a
    delegate principal, grants it certification power, and appends it to
    the preference order. Returns the delegate. *)
val add_delegate :
  t ->
  Pm_crypto.Prng.t ->
  name:string ->
  policy:(Meta.t -> verdict) ->
  latency:int ->
  ?expires:int ->
  unit ->
  delegate

(** [delegates t] in preference order. *)
val delegates : t -> delegate list

(** [certify t meta ~code ~now] runs the delegate chain over a component.
    The CA itself never signs components directly — that is what
    delegates are for — so an empty chain certifies nothing. *)
val certify : t -> Meta.t -> code:string -> now:int -> outcome

(** [certify_direct t ~signer_key ~signer ~meta ~code ~now] lets a caller
    holding a delegate key sign without consulting policies (used by
    baselines, e.g. the trusted compiler signing its own output). *)
val certify_direct :
  signer_key:Pm_crypto.Rsa.keypair ->
  signer:Principal.t ->
  meta:Meta.t ->
  code:string ->
  now:int ->
  Certificate.t
