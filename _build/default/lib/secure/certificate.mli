(** Component certificates.

    "In our system certificates include a message digest of the component
    so that it is impossible to modify the component after it has been
    certified." A certificate binds (component name, code digest, signer,
    issue time) under the signer's RSA key. *)

type t = {
  component : string;
  digest : string;  (** raw SHA-256 of the component code *)
  signer : Principal.t;
  issued_at : int;  (** logical timestamp *)
  signature : string;
}

(** [issue key ~signer ~component ~digest ~issued_at] signs a certificate.
    [key] must be [signer]'s key pair. *)
val issue :
  Pm_crypto.Rsa.keypair ->
  signer:Principal.t ->
  component:string ->
  digest:string ->
  issued_at:int ->
  t

(** [well_signed t] checks the signature under the embedded signer key.
    It does NOT establish that the signer has authority — that is
    {!Validator}'s job. *)
val well_signed : t -> bool

(** [matches_code t code] recomputes the digest of [code] and compares. *)
val matches_code : t -> string -> bool

val pp : Format.formatter -> t -> unit
