type t = { name : string; key : Pm_crypto.Rsa.public }

let make name key = { name; key }

let id t = Pm_crypto.Rsa.fingerprint t.key

let equal a b = String.equal (id a) (id b)

let pp fmt t = Format.fprintf fmt "%s<%s>" t.name (id t)
