module Sha256 = Pm_crypto.Sha256
module Rsa = Pm_crypto.Rsa

type t = {
  component : string;
  digest : string;
  signer : Principal.t;
  issued_at : int;
  signature : string;
}

(* Canonical byte string covered by the signature. Length-prefixed fields
   prevent splicing attacks between adjacent fields. *)
let to_be_signed ~component ~digest ~signer_id ~issued_at =
  let field s = Printf.sprintf "%d:%s" (String.length s) s in
  Sha256.digest
    (String.concat ";"
       [ "pm-cert-v1"; field component; field digest; field signer_id;
         field (string_of_int issued_at) ])

let issue key ~signer ~component ~digest ~issued_at =
  let tbs = to_be_signed ~component ~digest ~signer_id:(Principal.id signer) ~issued_at in
  { component; digest; signer; issued_at; signature = Rsa.sign key tbs }

let well_signed t =
  let tbs =
    to_be_signed ~component:t.component ~digest:t.digest
      ~signer_id:(Principal.id t.signer) ~issued_at:t.issued_at
  in
  Rsa.verify t.signer.Principal.key ~digest:tbs ~signature:t.signature

let matches_code t code = String.equal (Sha256.digest code) t.digest

let pp fmt t =
  Format.fprintf fmt "cert{%s by %a @%d digest=%s...}" t.component Principal.pp
    t.signer t.issued_at
    (String.sub (Sha256.to_hex t.digest) 0 12)
