(** Component metadata presented to certifiers.

    Certification policies decide from this description whether a
    component is trustworthy enough for the kernel protection domain:
    a trusted compiler accepts anything it compiled ([type_safe]), a
    prover accepts only components it can reason about, an administrator
    may accept by author or tag. *)

type t = {
  name : string;
  size : int;  (** code size in bytes *)
  author : string;
  type_safe : bool;  (** produced by the trusted type-safe compiler *)
  proof_annotated : bool;  (** ships with machine-checkable annotations *)
  tags : string list;
}

val make :
  ?author:string ->
  ?type_safe:bool ->
  ?proof_annotated:bool ->
  ?tags:string list ->
  name:string ->
  size:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
