type t = {
  name : string;
  size : int;
  author : string;
  type_safe : bool;
  proof_annotated : bool;
  tags : string list;
}

let make ?(author = "unknown") ?(type_safe = false) ?(proof_annotated = false)
    ?(tags = []) ~name ~size () =
  { name; size; author; type_safe; proof_annotated; tags }

let pp fmt t =
  Format.fprintf fmt "%s(%dB by %s%s%s)" t.name t.size t.author
    (if t.type_safe then ", type-safe" else "")
    (if t.proof_annotated then ", annotated" else "")
