type failure =
  | Digest_mismatch
  | Bad_signature
  | Untrusted_signer of string
  | Revoked_principal of string
  | Expired_grant of string

type decision = Valid of { chain_length : int } | Invalid of failure

type t = {
  root : Principal.t;
  mutable known_grants : Delegation.t list;
  revoked : (string, unit) Hashtbl.t;
}

let create ~root = { root; known_grants = []; revoked = Hashtbl.create 8 }

let root t = t.root
let add_grant t g = t.known_grants <- g :: t.known_grants
let grants t = t.known_grants
let revoke t pid = Hashtbl.replace t.revoked pid ()
let is_revoked t pid = Hashtbl.mem t.revoked pid

let scope_certification = "kernel-certification"

(* Does [pid] speak for the root through known grants? BFS upward over
   grants naming [pid] as delegate; cycles are cut by the visited set. *)
let chain_to_root t pid ~now =
  let visited = Hashtbl.create 8 in
  let rec search frontier depth =
    if frontier = [] || depth > 16 then None
    else if List.exists (fun p -> String.equal p (Principal.id t.root)) frontier then
      Some depth
    else begin
      let next =
        List.concat_map
          (fun p ->
            if Hashtbl.mem visited p then []
            else begin
              Hashtbl.add visited p ();
              List.filter_map
                (fun g ->
                  if
                    String.equal (Principal.id g.Delegation.delegate) p
                    && String.equal g.Delegation.scope scope_certification
                    && Delegation.well_signed g
                    && Delegation.live g ~now
                    && not (Hashtbl.mem t.revoked (Principal.id g.Delegation.grantor))
                  then Some (Principal.id g.Delegation.grantor)
                  else None)
                t.known_grants
            end)
          frontier
      in
      search next (depth + 1)
    end
  in
  search [ pid ] 0

let validate t cert ~code ~now =
  let signer_id = Principal.id cert.Certificate.signer in
  if not (Certificate.matches_code cert code) then Invalid Digest_mismatch
  else if not (Certificate.well_signed cert) then Invalid Bad_signature
  else if Hashtbl.mem t.revoked signer_id then Invalid (Revoked_principal signer_id)
  else begin
    match chain_to_root t signer_id ~now with
    | Some depth -> Valid { chain_length = depth }
    | None ->
      (* distinguish "no grant at all" from "grant exists but expired" for
         better operator diagnostics *)
      let expired =
        List.exists
          (fun g ->
            String.equal (Principal.id g.Delegation.delegate) signer_id
            && String.equal g.Delegation.scope scope_certification
            && Delegation.well_signed g
            && not (Delegation.live g ~now))
          t.known_grants
      in
      if expired then Invalid (Expired_grant signer_id)
      else Invalid (Untrusted_signer signer_id)
  end

let failure_to_string = function
  | Digest_mismatch -> "component digest does not match certificate"
  | Bad_signature -> "certificate signature invalid"
  | Untrusted_signer s -> Printf.sprintf "signer %s has no chain to the authority" s
  | Revoked_principal s -> Printf.sprintf "principal %s is revoked" s
  | Expired_grant s -> Printf.sprintf "grant for %s has expired" s
