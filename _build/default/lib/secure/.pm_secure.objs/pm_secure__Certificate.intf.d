lib/secure/certificate.mli: Format Pm_crypto Principal
