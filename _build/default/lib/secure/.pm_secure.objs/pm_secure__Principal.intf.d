lib/secure/principal.mli: Format Pm_crypto
