lib/secure/authority.mli: Certificate Delegation Meta Pm_crypto Principal
