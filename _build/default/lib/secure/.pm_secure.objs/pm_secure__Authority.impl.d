lib/secure/authority.ml: Certificate Delegation List Meta Pm_crypto Principal
