lib/secure/principal.ml: Format Pm_crypto String
