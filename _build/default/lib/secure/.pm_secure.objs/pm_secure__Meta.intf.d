lib/secure/meta.mli: Format
