lib/secure/delegation.ml: Format Pm_crypto Principal Printf String
