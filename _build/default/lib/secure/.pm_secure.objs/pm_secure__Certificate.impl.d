lib/secure/certificate.ml: Format Pm_crypto Principal Printf String
