lib/secure/validator.ml: Certificate Delegation Hashtbl List Principal Printf String
