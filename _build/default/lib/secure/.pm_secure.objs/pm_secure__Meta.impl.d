lib/secure/meta.ml: Format
