lib/secure/delegation.mli: Format Pm_crypto Principal
