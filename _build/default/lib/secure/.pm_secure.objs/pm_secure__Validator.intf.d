lib/secure/validator.mli: Certificate Delegation Principal
