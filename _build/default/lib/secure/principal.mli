(** Principals: named holders of public keys.

    Following the Taos authentication work the paper builds on, every
    party in the certification architecture — the certification authority,
    its delegates (provers, trusted compilers, administrators, graduate
    students), component authors — is a principal identified by its public
    key. *)

type t = { name : string; key : Pm_crypto.Rsa.public }

val make : string -> Pm_crypto.Rsa.public -> t

(** [id t] is the key fingerprint; two principals with the same key are
    the same authority regardless of display name. *)
val id : t -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
