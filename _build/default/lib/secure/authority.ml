module Rsa = Pm_crypto.Rsa
module Sha256 = Pm_crypto.Sha256

type verdict = Accept | Reject of string | Cannot_decide

type delegate = {
  principal : Principal.t;
  keypair : Rsa.keypair;
  policy : Meta.t -> verdict;
  latency : int;
}

type t = {
  ca : Principal.t;
  ca_key : Rsa.keypair;
  key_bits : int;
  mutable chain : delegate list; (* preference order *)
  mutable issued_grants : Delegation.t list;
}

type outcome = {
  certificate : Certificate.t option;
  trail : (string * verdict) list;
  elapsed : int;
}

let scope_certification = "kernel-certification"

let create rng ~name ~key_bits =
  let ca_key = Rsa.generate rng ~bits:key_bits in
  { ca = Principal.make name ca_key.Rsa.pub; ca_key; key_bits; chain = []; issued_grants = [] }

let ca t = t.ca
let grants t = t.issued_grants
let delegates t = t.chain

let add_delegate t rng ~name ~policy ~latency ?expires () =
  let keypair = Rsa.generate rng ~bits:t.key_bits in
  let principal = Principal.make name keypair.Rsa.pub in
  let g =
    Delegation.grant t.ca_key ~grantor:t.ca ~delegate:principal
      ~scope:scope_certification ?expires ()
  in
  let d = { principal; keypair; policy; latency } in
  t.chain <- t.chain @ [ d ];
  t.issued_grants <- g :: t.issued_grants;
  d

let certify t meta ~code ~now =
  let digest = Sha256.digest code in
  let rec walk trail elapsed = function
    | [] -> { certificate = None; trail = List.rev trail; elapsed }
    | d :: rest ->
      let verdict = d.policy meta in
      let elapsed = elapsed + d.latency in
      let trail = (d.principal.Principal.name, verdict) :: trail in
      (match verdict with
      | Accept ->
        let cert =
          Certificate.issue d.keypair ~signer:d.principal ~component:meta.Meta.name
            ~digest ~issued_at:now
        in
        { certificate = Some cert; trail = List.rev trail; elapsed }
      | Reject _ | Cannot_decide -> walk trail elapsed rest)
  in
  walk [] 0 t.chain

let certify_direct ~signer_key ~signer ~meta ~code ~now =
  Certificate.issue signer_key ~signer ~component:meta.Meta.name
    ~digest:(Sha256.digest code) ~issued_at:now
