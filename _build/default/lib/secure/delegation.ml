module Sha256 = Pm_crypto.Sha256
module Rsa = Pm_crypto.Rsa

type t = {
  grantor : Principal.t;
  delegate : Principal.t;
  scope : string;
  expires : int option;
  signature : string;
}

let to_be_signed ~grantor_id ~delegate_id ~scope ~expires =
  let field s = Printf.sprintf "%d:%s" (String.length s) s in
  Sha256.digest
    (String.concat ";"
       [ "pm-grant-v1"; field grantor_id; field delegate_id; field scope;
         field (match expires with None -> "never" | Some e -> string_of_int e) ])

let grant key ~grantor ~delegate ~scope ?expires () =
  let tbs =
    to_be_signed ~grantor_id:(Principal.id grantor)
      ~delegate_id:(Principal.id delegate) ~scope ~expires
  in
  { grantor; delegate; scope; expires; signature = Rsa.sign key tbs }

let well_signed t =
  let tbs =
    to_be_signed ~grantor_id:(Principal.id t.grantor)
      ~delegate_id:(Principal.id t.delegate) ~scope:t.scope ~expires:t.expires
  in
  Rsa.verify t.grantor.Principal.key ~digest:tbs ~signature:t.signature

let live t ~now = match t.expires with None -> true | Some e -> now < e

let pp fmt t =
  Format.fprintf fmt "grant{%a -> %a on %s%s}" Principal.pp t.grantor Principal.pp
    t.delegate t.scope
    (match t.expires with None -> "" | Some e -> Printf.sprintf " until %d" e)
