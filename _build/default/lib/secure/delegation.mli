(** Speaks-for delegation statements (after Lampson et al. / Taos).

    A grant signed by principal [grantor] states that [delegate] speaks
    for the grantor within [scope] (here always certification). Chains of
    grants let the certification authority hand its powers to
    subordinates, which may re-delegate. *)

type t = {
  grantor : Principal.t;
  delegate : Principal.t;
  scope : string;
  expires : int option;  (** logical time; [None] = never *)
  signature : string;
}

(** [grant key ~grantor ~delegate ~scope ?expires ()] signs a delegation;
    [key] must be [grantor]'s key pair. *)
val grant :
  Pm_crypto.Rsa.keypair ->
  grantor:Principal.t ->
  delegate:Principal.t ->
  scope:string ->
  ?expires:int ->
  unit ->
  t

(** [well_signed t] verifies the grantor's signature. *)
val well_signed : t -> bool

(** [live t ~now] is true when the grant has not expired. *)
val live : t -> now:int -> bool

val pp : Format.formatter -> t -> unit
