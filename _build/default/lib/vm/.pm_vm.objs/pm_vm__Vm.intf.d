lib/vm/vm.mli: Format Pm_obj
