lib/vm/filterc.mli: Hashtbl Pm_secure Vm
