lib/vm/vm.ml: Array Buffer Bytes Char Format Pm_machine Pm_obj Printf String
