lib/vm/filterc.ml: Array Hashtbl List Pm_secure Printf Result String Vm
