lib/vm/sfi_rewrite.ml: Array List Vm
