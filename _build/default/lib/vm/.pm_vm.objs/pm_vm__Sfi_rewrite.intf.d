lib/vm/sfi_rewrite.mli: Vm
