module Clock = Pm_machine.Clock
module Call_ctx = Pm_obj.Call_ctx

type reg = int

type instr =
  | Const of reg * int
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * int
  | Shr of reg * reg * int
  | Load8 of reg * reg * int
  | Store8 of reg * reg * int
  | Jmp of int
  | Jz of reg * int
  | Jnz of reg * int
  | Jlt of reg * reg * int
  | Ret of reg

type program = instr array

type mem = { size : int; read8 : int -> int; write8 : int -> int -> unit }

let mem_of_bytes b =
  {
    size = Bytes.length b;
    read8 = (fun off -> Char.code (Bytes.get b off));
    write8 = (fun off v -> Bytes.set b off (Char.chr (v land 0xff)));
  }

type outcome = Returned of int | Wild_access of int | Vm_fault of string

exception Wild of int
exception Fault of string

let nregs = 8

let run (ctx : Call_ctx.t) ~mem ?(fuel = 10_000) (program : program) =
  let regs = Array.make nregs 0 in
  regs.(1) <- mem.size;
  let clock = ctx.Call_ctx.clock in
  let n = Array.length program in
  let checked_read off =
    Call_ctx.access ctx 1;
    if off < 0 || off >= mem.size then raise (Wild off);
    mem.read8 off
  in
  let checked_write off v =
    Call_ctx.access ctx 1;
    if off < 0 || off >= mem.size then raise (Wild off);
    mem.write8 off v
  in
  let jump_target target =
    if target < 0 || target >= n then raise (Fault "jump out of program") else target
  in
  let rec step pc remaining =
    if remaining = 0 then raise (Fault "out of fuel");
    if pc < 0 || pc >= n then raise (Fault "fell off the program");
    Clock.advance clock 1;
    match program.(pc) with
    | Const (rd, imm) ->
      regs.(rd) <- imm;
      step (pc + 1) (remaining - 1)
    | Mov (rd, rs) ->
      regs.(rd) <- regs.(rs);
      step (pc + 1) (remaining - 1)
    | Add (rd, a, b) ->
      regs.(rd) <- regs.(a) + regs.(b);
      step (pc + 1) (remaining - 1)
    | Sub (rd, a, b) ->
      regs.(rd) <- regs.(a) - regs.(b);
      step (pc + 1) (remaining - 1)
    | Mul (rd, a, b) ->
      regs.(rd) <- regs.(a) * regs.(b);
      step (pc + 1) (remaining - 1)
    | Div (rd, a, b) ->
      if regs.(b) = 0 then raise (Fault "division by zero");
      regs.(rd) <- regs.(a) / regs.(b);
      step (pc + 1) (remaining - 1)
    | And (rd, a, b) ->
      regs.(rd) <- regs.(a) land regs.(b);
      step (pc + 1) (remaining - 1)
    | Or (rd, a, b) ->
      regs.(rd) <- regs.(a) lor regs.(b);
      step (pc + 1) (remaining - 1)
    | Xor (rd, a, b) ->
      regs.(rd) <- regs.(a) lxor regs.(b);
      step (pc + 1) (remaining - 1)
    | Shl (rd, a, k) ->
      regs.(rd) <- regs.(a) lsl (min 62 (max 0 k));
      step (pc + 1) (remaining - 1)
    | Shr (rd, a, k) ->
      regs.(rd) <- regs.(a) lsr (min 62 (max 0 k));
      step (pc + 1) (remaining - 1)
    | Load8 (rd, rs, imm) ->
      regs.(rd) <- checked_read (regs.(rs) + imm);
      step (pc + 1) (remaining - 1)
    | Store8 (rs, ra, imm) ->
      checked_write (regs.(ra) + imm) regs.(rs);
      step (pc + 1) (remaining - 1)
    | Jmp target -> step (jump_target target) (remaining - 1)
    | Jz (r, target) ->
      if regs.(r) = 0 then step (jump_target target) (remaining - 1)
      else step (pc + 1) (remaining - 1)
    | Jnz (r, target) ->
      if regs.(r) <> 0 then step (jump_target target) (remaining - 1)
      else step (pc + 1) (remaining - 1)
    | Jlt (a, b, target) ->
      if regs.(a) < regs.(b) then step (jump_target target) (remaining - 1)
      else step (pc + 1) (remaining - 1)
    | Ret r -> regs.(r)
  in
  if n = 0 then Vm_fault "empty program"
  else begin
    match step 0 fuel with
    | v -> Returned v
    | exception Wild off ->
      Clock.count clock "vm_wild_access";
      Wild_access off
    | exception Fault msg ->
      Clock.count clock "vm_fault";
      Vm_fault msg
  end

(* --- encoding: 8 bytes per instruction ------------------------------- *)

let opcode = function
  | Const _ -> 1
  | Mov _ -> 2
  | Add _ -> 3
  | Sub _ -> 4
  | Mul _ -> 5
  | Div _ -> 6
  | And _ -> 7
  | Or _ -> 8
  | Xor _ -> 9
  | Shl _ -> 10
  | Shr _ -> 11
  | Load8 _ -> 12
  | Store8 _ -> 13
  | Jmp _ -> 14
  | Jz _ -> 15
  | Jnz _ -> 16
  | Jlt _ -> 17
  | Ret _ -> 18

let fields = function
  | Const (rd, imm) -> (rd, 0, 0, imm)
  | Mov (rd, rs) -> (rd, rs, 0, 0)
  | Add (rd, a, b) | Sub (rd, a, b) | Mul (rd, a, b) | Div (rd, a, b)
  | And (rd, a, b) | Or (rd, a, b) | Xor (rd, a, b) ->
    (rd, a, b, 0)
  | Shl (rd, a, k) | Shr (rd, a, k) -> (rd, a, 0, k)
  | Load8 (rd, rs, imm) -> (rd, rs, 0, imm)
  | Store8 (rs, ra, imm) -> (rs, ra, 0, imm)
  | Jmp t -> (0, 0, 0, t)
  | Jz (r, t) -> (r, 0, 0, t)
  | Jnz (r, t) -> (r, 0, 0, t)
  | Jlt (a, b, t) -> (a, b, 0, t)
  | Ret r -> (r, 0, 0, 0)

let encode program =
  let buf = Buffer.create (Array.length program * 8) in
  Array.iter
    (fun ins ->
      let rd, a, b, imm = fields ins in
      Buffer.add_char buf (Char.chr (opcode ins));
      Buffer.add_char buf (Char.chr rd);
      Buffer.add_char buf (Char.chr a);
      Buffer.add_char buf (Char.chr b);
      (* signed 32-bit big-endian immediate *)
      let imm32 = imm land 0xFFFFFFFF in
      Buffer.add_char buf (Char.chr ((imm32 lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((imm32 lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((imm32 lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (imm32 land 0xff)))
    program;
  Buffer.contents buf

let decode s =
  if String.length s mod 8 <> 0 then Error "object code length not a multiple of 8"
  else begin
    let n = String.length s / 8 in
    let reg_ok r = r >= 0 && r < nregs in
    let result = ref (Ok ()) in
    let prog =
      Array.init n (fun idx ->
          let at k = Char.code s.[(idx * 8) + k] in
          let rd = at 1 and a = at 2 and b = at 3 in
          let imm32 = (at 4 lsl 24) lor (at 5 lsl 16) lor (at 6 lsl 8) lor at 7 in
          (* sign-extend from 32 bits *)
          let imm = if imm32 land 0x80000000 <> 0 then imm32 - (1 lsl 32) else imm32 in
          let bad msg =
            if !result = Ok () then result := Error msg;
            Ret 0
          in
          if not (reg_ok rd && reg_ok a && reg_ok b) then bad "bad register"
          else begin
            match at 0 with
            | 1 -> Const (rd, imm)
            | 2 -> Mov (rd, a)
            | 3 -> Add (rd, a, b)
            | 4 -> Sub (rd, a, b)
            | 5 -> Mul (rd, a, b)
            | 6 -> Div (rd, a, b)
            | 7 -> And (rd, a, b)
            | 8 -> Or (rd, a, b)
            | 9 -> Xor (rd, a, b)
            | 10 -> Shl (rd, a, imm)
            | 11 -> Shr (rd, a, imm)
            | 12 -> Load8 (rd, a, imm)
            | 13 -> Store8 (rd, a, imm)
            | 14 -> Jmp imm
            | 15 -> Jz (rd, imm)
            | 16 -> Jnz (rd, imm)
            | 17 -> Jlt (rd, a, imm)
            | 18 -> Ret rd
            | op -> bad (Printf.sprintf "bad opcode %d" op)
          end)
    in
    match !result with Ok () -> Ok prog | Error e -> Error e
  end

let instr_count = Array.length

let pp_instr fmt ins =
  let s =
    match ins with
    | Const (rd, imm) -> Printf.sprintf "const r%d, %d" rd imm
    | Mov (rd, rs) -> Printf.sprintf "mov r%d, r%d" rd rs
    | Add (rd, a, b) -> Printf.sprintf "add r%d, r%d, r%d" rd a b
    | Sub (rd, a, b) -> Printf.sprintf "sub r%d, r%d, r%d" rd a b
    | Mul (rd, a, b) -> Printf.sprintf "mul r%d, r%d, r%d" rd a b
    | Div (rd, a, b) -> Printf.sprintf "div r%d, r%d, r%d" rd a b
    | And (rd, a, b) -> Printf.sprintf "and r%d, r%d, r%d" rd a b
    | Or (rd, a, b) -> Printf.sprintf "or r%d, r%d, r%d" rd a b
    | Xor (rd, a, b) -> Printf.sprintf "xor r%d, r%d, r%d" rd a b
    | Shl (rd, a, k) -> Printf.sprintf "shl r%d, r%d, %d" rd a k
    | Shr (rd, a, k) -> Printf.sprintf "shr r%d, r%d, %d" rd a k
    | Load8 (rd, rs, imm) -> Printf.sprintf "ld8 r%d, [r%d+%d]" rd rs imm
    | Store8 (rs, ra, imm) -> Printf.sprintf "st8 [r%d+%d], r%d" ra imm rs
    | Jmp t -> Printf.sprintf "jmp %d" t
    | Jz (r, t) -> Printf.sprintf "jz r%d, %d" r t
    | Jnz (r, t) -> Printf.sprintf "jnz r%d, %d" r t
    | Jlt (a, b, t) -> Printf.sprintf "jlt r%d, r%d, %d" a b t
    | Ret r -> Printf.sprintf "ret r%d" r
  in
  Format.pp_print_string fmt s

let pp_program fmt program =
  Array.iteri (fun idx ins -> Format.fprintf fmt "%3d: %a@." idx pp_instr ins) program
