(** Certifier policies modelling the paper's delegate menagerie.

    §4: delegates "may include programs, like type-safe language compilers
    or automated correctness provers, software test teams, system
    administrators, and even graduate students", ordered by preference
    with fall-through ("escape hatch"). Each policy here is a
    [Meta.t -> verdict] suitable for {!Pm_secure.Authority.add_delegate};
    suggested latencies reflect the paper's observation that certifiers
    may take arbitrary (off-line) time. *)

open Pm_secure

(** SPIN as a delegate: "everything compiled by that compiler would then
    be automatically certified". Accepts iff [type_safe]; otherwise
    cannot decide. *)
val trusted_compiler : Meta.t -> Authority.verdict

(** Automated correctness prover: accepts components with proof
    annotations; "when the automatic program correctness prover decides
    that it cannot complete the proof, it might turn the problem over to
    the system administrator" — so everything else is [Cannot_decide]. *)
val prover : Meta.t -> Authority.verdict

(** Software test team: accepts components carrying a ["tested"] tag,
    rejects components tagged ["known-bad"], cannot decide otherwise. *)
val test_team : Meta.t -> Authority.verdict

(** System administrator: accepts components from trusted authors, rejects
    the rest outright (the end of the escape hatch). *)
val administrator : trusted_authors:string list -> Meta.t -> Authority.verdict

(** The graduate student certifies anything that fits in their head. *)
val graduate_student : max_size:int -> Meta.t -> Authority.verdict

(** [flaky rng ~fail_probability policy] makes a delegate that sometimes
    cannot decide regardless of [policy] — for the escape-hatch
    experiment (E8). *)
val flaky :
  Pm_crypto.Prng.t ->
  fail_probability:float ->
  (Meta.t -> Authority.verdict) ->
  Meta.t ->
  Authority.verdict

(** Suggested certification latencies (cycles): compilers are fast,
    provers slow, humans slower. *)
val latency_compiler : int

val latency_prover : int
val latency_test_team : int
val latency_administrator : int
val latency_student : int
