open Pm_secure

let trusted_compiler (m : Meta.t) =
  if m.Meta.type_safe then Authority.Accept else Authority.Cannot_decide

let prover (m : Meta.t) =
  if m.Meta.proof_annotated then Authority.Accept else Authority.Cannot_decide

let test_team (m : Meta.t) =
  if List.mem "known-bad" m.Meta.tags then Authority.Reject "failed the test suite"
  else if List.mem "tested" m.Meta.tags then Authority.Accept
  else Authority.Cannot_decide

let administrator ~trusted_authors (m : Meta.t) =
  if List.mem m.Meta.author trusted_authors then Authority.Accept
  else Authority.Reject (Printf.sprintf "author %S is not trusted" m.Meta.author)

let graduate_student ~max_size (m : Meta.t) =
  if m.Meta.size <= max_size then Authority.Accept else Authority.Cannot_decide

let flaky rng ~fail_probability policy m =
  if Pm_crypto.Prng.float rng < fail_probability then Authority.Cannot_decide
  else policy m

(* cycles; a 50MHz-era machine does 5e7 cycles per second *)
let latency_compiler = 2_000_000 (* tens of milliseconds *)
let latency_prover = 500_000_000 (* ~10 seconds of machine time *)
let latency_test_team = 5_000_000_000 (* minutes *)
let latency_administrator = 50_000_000_000 (* tens of minutes *)
let latency_student = 10_000_000_000
