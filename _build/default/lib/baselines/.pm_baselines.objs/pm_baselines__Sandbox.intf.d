lib/baselines/sandbox.mli: Pm_obj
