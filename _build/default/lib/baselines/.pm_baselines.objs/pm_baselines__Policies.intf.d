lib/baselines/policies.mli: Authority Meta Pm_crypto Pm_secure
