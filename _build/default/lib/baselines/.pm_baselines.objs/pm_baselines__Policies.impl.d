lib/baselines/policies.ml: Authority List Meta Pm_crypto Pm_secure Printf
