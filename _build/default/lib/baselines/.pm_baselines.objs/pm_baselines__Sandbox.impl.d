lib/baselines/sandbox.ml: List Pm_machine Pm_obj String
