(** Software-fault-isolation sandbox (the Exokernel/SPIN-era baseline).

    Models Wahbe et al.'s SFI as the paper positions it: the alternative
    to certification that admits untrusted code into the kernel protection
    domain at the price of run-time checks. Wrapping an instance taxes
    every method with a sandbox crossing ([sfi_entry]) and every memory
    access the component performs with an address check ([sfi_check]) —
    access counts come from {!Pm_obj.Call_ctx.access} bookkeeping.

    "Verifying a certificate at load-time obviates the need for run time
    fault checks thus allowing components to be more efficient" — this
    wrapper is the thing being obviated; experiments E4/E5 measure the
    difference. *)

(** [wrap registry ~target] is a sandboxed view of [target]: same
    interfaces, run-time checks added. *)
val wrap :
  Pm_obj.Instance.t Pm_obj.Registry.t ->
  target:Pm_obj.Instance.t ->
  Pm_obj.Instance.t

(** [for_loader registry] is [wrap] in the shape the loader's [?sandbox]
    parameter expects. *)
val for_loader :
  Pm_obj.Instance.t Pm_obj.Registry.t -> Pm_obj.Instance.t -> Pm_obj.Instance.t

(** [is_sandboxed inst] recognizes wrapped instances. *)
val is_sandboxed : Pm_obj.Instance.t -> bool
