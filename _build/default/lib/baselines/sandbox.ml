module Iface = Pm_obj.Iface
module Instance = Pm_obj.Instance
module Call_ctx = Pm_obj.Call_ctx
module Invoke = Pm_obj.Invoke
module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost

let class_prefix = "sandboxed:"

let is_sandboxed inst =
  String.length inst.Instance.class_name >= String.length class_prefix
  && String.equal
       (String.sub inst.Instance.class_name 0 (String.length class_prefix))
       class_prefix

let wrap registry ~target =
  let checked iface_name (m : Iface.meth) =
    let impl (ctx : Call_ctx.t) args =
      let clock = ctx.Call_ctx.clock and costs = ctx.Call_ctx.costs in
      (* sandbox crossing on entry/exit *)
      Clock.advance clock costs.Cost.sfi_entry;
      Clock.count clock "sfi_crossing";
      let before = Call_ctx.accesses ctx in
      let result = Invoke.call ctx target ~iface:iface_name ~meth:m.Iface.mname args in
      let accesses = Call_ctx.accesses ctx - before in
      (* one address check per memory access the component performed *)
      Clock.advance clock (accesses * costs.Cost.sfi_check);
      Clock.count_n clock "sfi_check" accesses;
      result
    in
    { m with Iface.impl }
  in
  let sandboxed_iface (i : Iface.t) =
    Iface.make ~version:i.Iface.version ~name:i.Iface.name
      (List.map (checked i.Iface.name) i.Iface.methods)
  in
  Instance.create registry
    ~class_name:(class_prefix ^ target.Instance.class_name)
    ~domain:target.Instance.domain
    (List.map sandboxed_iface target.Instance.interfaces)

let for_loader registry inst = wrap registry ~target:inst
