(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic element of the reproduction — key generation, workload
    synthesis, delegate failure injection — draws from an explicit [t] so
    that tests and experiments are reproducible from a seed. Not a
    cryptographically secure generator; the certification service's
    security argument rests on digests and signatures, not on this. *)

type t

(** [create ~seed] makes an independent generator. Equal seeds give equal
    streams. *)
val create : seed:int -> t

(** [copy t] is a generator with the same future stream as [t]. *)
val copy : t -> t

(** [split t] derives a new independent generator and advances [t]. *)
val split : t -> t

(** [bits t n] is a uniform integer with [n] random bits, [0 <= n <= 62]. *)
val bits : t -> int -> int

(** [int t bound] is uniform in [0, bound); [bound > 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bytes t n] is a string of [n] uniform bytes. *)
val bytes : t -> int -> string
