(** RSA signatures over {!Pm_bignum.Nat}, from scratch.

    This is the public-key half of the certification architecture: the
    certification authority and its delegates hold key pairs; certificates
    carry an RSA signature over a SHA-256 component digest, padded with a
    deterministic PKCS#1-v1.5-style block.

    Key sizes are configurable; tests use short keys (256–512 bits) to stay
    fast, which changes no code path. *)

type public = { n : Pm_bignum.Nat.t; e : Pm_bignum.Nat.t }

type keypair = {
  pub : public;
  d : Pm_bignum.Nat.t; (* private exponent *)
  bits : int; (* modulus width *)
}

(** [generate rng ~bits] makes a key pair with a [bits]-bit modulus
    ([bits >= 64]) and public exponent 65537 (falling back to 3 when 65537
    divides the totient). *)
val generate : Prng.t -> bits:int -> keypair

(** [sign key digest] signs a raw digest (any string shorter than the
    modulus minus 11 bytes of padding). Deterministic. *)
val sign : keypair -> string -> string

(** [verify pub ~digest ~signature] checks that [signature] is a valid
    signature of [digest] under [pub]. Never raises: malformed input is
    simply invalid. *)
val verify : public -> digest:string -> signature:string -> bool

(** [modulus_bytes pub] is the signature block length in bytes. *)
val modulus_bytes : public -> int

(** Raw exponentiation, exposed for tests and for the textbook
    encrypt/decrypt round-trip. *)
val encrypt : public -> Pm_bignum.Nat.t -> Pm_bignum.Nat.t

val decrypt : keypair -> Pm_bignum.Nat.t -> Pm_bignum.Nat.t

(** [fingerprint pub] is a short hex identifier of a public key, used as a
    principal identity in the security architecture. *)
val fingerprint : public -> string
