(* SplitMix64 (Steele, Lea, Flood 2014). State is a single 64-bit counter;
   output is a bijective finalizer of the state, so distinct seeds give
   well-separated streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next64 t in
  { state = mix seed }

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Prng.bits: need 0 <= n <= 62";
  if n = 0 then 0
  else begin
    let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
    v land ((1 lsl n) - 1)
  end

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection sampling for uniformity *)
  let nbits =
    let rec go b n = if b = 0 then n else go (b lsr 1) (n + 1) in
    go (bound - 1) 0
  in
  if nbits = 0 then 0
  else begin
    let rec draw () =
      let v = bits t nbits in
      if v < bound then v else draw ()
    in
    draw ()
  end

let bool t = bits t 1 = 1

let float t = float_of_int (bits t 53) /. 9007199254740992.0 (* 2^53 *)

let bytes t n =
  if n < 0 then invalid_arg "Prng.bytes: negative length";
  String.init n (fun _ -> Char.chr (bits t 8))
