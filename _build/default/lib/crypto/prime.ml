module Nat = Pm_bignum.Nat

let random_bits rng ~bits =
  if bits < 0 then invalid_arg "Prime.random_bits: negative width";
  if bits = 0 then Nat.zero
  else begin
    (* draw 24-bit chunks and assemble *)
    let rec go acc remaining =
      if remaining <= 0 then acc
      else begin
        let take = Stdlib.min 24 remaining in
        let chunk = Prng.bits rng take in
        go (Nat.add (Nat.shift_left acc take) (Nat.of_int chunk)) (remaining - take)
      end
    in
    go Nat.zero bits
  end

let random_below rng n =
  if Nat.is_zero n then invalid_arg "Prime.random_below: zero bound";
  let bits = Nat.bit_length n in
  let rec draw () =
    let candidate = random_bits rng ~bits in
    if Nat.compare candidate n < 0 then candidate else draw ()
  in
  draw ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199 ]

(* One Miller-Rabin round with witness [a] against n = d * 2^s + 1. *)
let miller_rabin_round n n1 d s a =
  let x = Nat.mod_pow a d n in
  if Nat.equal x Nat.one || Nat.equal x n1 then true
  else begin
    let rec squarings x i =
      if i >= s - 1 then false
      else begin
        let x = Nat.rem (Nat.mul x x) n in
        if Nat.equal x n1 then true else squarings x (i + 1)
      end
    in
    squarings x 0
  end

let is_probable_prime ?(rounds = 24) rng n =
  match Nat.to_int n with
  | Some v when v < 2 -> false
  | Some v when List.mem v small_primes -> true
  | _ ->
    if Nat.is_even n then false
    else if
      List.exists
        (fun p -> Nat.is_zero (Nat.rem n (Nat.of_int p)))
        small_primes
    then false
    else begin
      let n1 = Nat.sub n Nat.one in
      (* write n-1 = d * 2^s with d odd *)
      let rec split d s = if Nat.is_odd d then (d, s) else split (Nat.shift_right d 1) (s + 1) in
      let d, s = split n1 0 in
      let two = Nat.two in
      let n3 = Nat.sub n (Nat.of_int 3) in
      let rec rounds_left k =
        if k = 0 then true
        else begin
          (* witness uniform in [2, n-2] *)
          let a = Nat.add two (random_below rng (Nat.add n3 Nat.one)) in
          if miller_rabin_round n n1 d s a then rounds_left (k - 1) else false
        end
      in
      rounds_left rounds
    end

let random_prime rng ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: need at least 2 bits";
  let top = Nat.add (Nat.shift_left Nat.one (bits - 1)) (Nat.shift_left Nat.one (bits - 2)) in
  let rec search () =
    let low = random_bits rng ~bits:(bits - 2) in
    (* force top two bits and make it odd *)
    let candidate = Nat.add top low in
    let candidate = if Nat.is_even candidate then Nat.add candidate Nat.one else candidate in
    if is_probable_prime rng candidate then candidate else search ()
  in
  search ()
