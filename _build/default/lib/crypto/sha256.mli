(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used by the certification service to compute component message digests:
    a certificate binds the digest of a component's code so that any
    post-certification modification is detected at load time.

    Both one-shot and incremental (streaming) interfaces are provided;
    the incremental one lets the loader digest component images chunk by
    chunk. *)

type ctx

(** [init ()] is a fresh hashing context. *)
val init : unit -> ctx

(** [update ctx s] absorbs [s]. Contexts are mutable. *)
val update : ctx -> string -> unit

(** [finalize ctx] completes the hash and returns the 32-byte raw digest.
    The context must not be used afterwards. *)
val finalize : ctx -> string

(** [digest s] is the 32-byte raw digest of [s]. *)
val digest : string -> string

(** [hex_digest s] is the lowercase hexadecimal digest of [s]. *)
val hex_digest : string -> string

(** [to_hex raw] renders a raw digest in lowercase hexadecimal. *)
val to_hex : string -> string

(** Digest length in bytes (32). *)
val digest_length : int
