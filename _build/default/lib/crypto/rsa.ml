module Nat = Pm_bignum.Nat

type public = { n : Nat.t; e : Nat.t }
type keypair = { pub : public; d : Nat.t; bits : int }

let generate rng ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: need at least 64 bits";
  let half = bits / 2 in
  let rec attempt () =
    let p = Prime.random_prime rng ~bits:half in
    let q = Prime.random_prime rng ~bits:(bits - half) in
    if Nat.equal p q then attempt ()
    else begin
      let n = Nat.mul p q in
      let phi = Nat.mul (Nat.sub p Nat.one) (Nat.sub q Nat.one) in
      let pick_e () =
        let e = Nat.of_int 65537 in
        if Nat.equal (Nat.gcd e phi) Nat.one then Some e
        else begin
          let e = Nat.of_int 3 in
          if Nat.equal (Nat.gcd e phi) Nat.one then Some e else None
        end
      in
      match pick_e () with
      | None -> attempt ()
      | Some e ->
        let d = Nat.mod_inv e phi in
        { pub = { n; e }; d; bits = Nat.bit_length n }
    end
  in
  attempt ()

let modulus_bytes pub = (Nat.bit_length pub.n + 7) / 8

(* PKCS#1 v1.5 type-1 style block: 0x00 0x01 0xFF.. 0x00 digest.
   Deterministic padding makes signatures reproducible and lets [verify]
   simply rebuild and compare the expected block. *)
let pad_block ~len digest =
  let dlen = String.length digest in
  if dlen + 11 > len then invalid_arg "Rsa.pad_block: digest too long for modulus";
  let b = Bytes.make len '\xff' in
  Bytes.set b 0 '\x00';
  Bytes.set b 1 '\x01';
  Bytes.set b (len - dlen - 1) '\x00';
  Bytes.blit_string digest 0 b (len - dlen) dlen;
  Bytes.to_string b

let sign key digest =
  let len = modulus_bytes key.pub in
  let block = pad_block ~len digest in
  let m = Nat.of_bytes_be block in
  let s = Nat.mod_pow m key.d key.pub.n in
  Nat.to_bytes_be ~len s

let verify pub ~digest ~signature =
  let len = modulus_bytes pub in
  if String.length signature <> len then false
  else begin
    match pad_block ~len digest with
    | exception Invalid_argument _ -> false
    | expected ->
      let s = Nat.of_bytes_be signature in
      if Nat.compare s pub.n >= 0 then false
      else begin
        let m = Nat.mod_pow s pub.e pub.n in
        String.equal (Nat.to_bytes_be ~len m) expected
      end
  end

let encrypt pub m =
  if Nat.compare m pub.n >= 0 then invalid_arg "Rsa.encrypt: message >= modulus";
  Nat.mod_pow m pub.e pub.n

let decrypt key c =
  if Nat.compare c key.pub.n >= 0 then invalid_arg "Rsa.decrypt: ciphertext >= modulus";
  Nat.mod_pow c key.d key.pub.n

let fingerprint pub =
  let material = Nat.to_bytes_be pub.n ^ "/" ^ Nat.to_bytes_be pub.e in
  String.sub (Sha256.hex_digest material) 0 16
