lib/crypto/prng.mli:
