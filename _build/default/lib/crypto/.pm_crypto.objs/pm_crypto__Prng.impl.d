lib/crypto/prng.ml: Char Int64 String
