lib/crypto/rsa.ml: Bytes Pm_bignum Prime Sha256 String
