lib/crypto/prime.ml: List Pm_bignum Prng Stdlib
