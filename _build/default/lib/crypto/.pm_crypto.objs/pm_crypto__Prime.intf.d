lib/crypto/prime.mli: Pm_bignum Prng
