lib/crypto/rsa.mli: Pm_bignum Prng
