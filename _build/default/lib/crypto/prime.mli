(** Probabilistic primality testing and prime generation (Miller–Rabin).

    Consumes randomness only through an explicit {!Prng.t} so RSA key
    generation is reproducible from a seed. *)

(** [random_below rng n] is uniform in [0, n); [n > 0]. *)
val random_below : Prng.t -> Pm_bignum.Nat.t -> Pm_bignum.Nat.t

(** [random_bits rng ~bits] is uniform in [0, 2^bits). *)
val random_bits : Prng.t -> bits:int -> Pm_bignum.Nat.t

(** [is_probable_prime ?rounds rng n] runs trial division by small primes
    followed by [rounds] Miller–Rabin rounds (default 24, error probability
    at most 4^-24). *)
val is_probable_prime : ?rounds:int -> Prng.t -> Pm_bignum.Nat.t -> bool

(** [random_prime rng ~bits] is a probable prime with exactly [bits] bits
    ([bits >= 2]); the top two bits and the low bit are forced so RSA
    moduli get their full width. *)
val random_prime : Prng.t -> bits:int -> Pm_bignum.Nat.t
