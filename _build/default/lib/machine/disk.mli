(** Simulated block storage device.

    Page-granular blocks with DMA to/from physical memory. Two access
    models:

    - {b Programmed (asynchronous)}: the driver writes BLOCK/ADDR/CMD
      registers; the operation completes on a later machine tick and
      raises the IRQ line. Register map:
      - 0 [BLOCK]: block number
      - 1 [ADDR]: physical memory address for the DMA
      - 2 [CMD]: write 1 = read block into memory, 2 = write memory to
        block
      - 3 [STATUS]: bit0 busy, bit1 done (write-1-to-clear), bit2 error
      - 4 [BLOCKS] (read-only): device capacity in blocks
    - {b Synchronous}: {!read_sync}/{!write_sync} perform the transfer
      immediately, charging {!op_cycles} to the clock — what a paging
      component inside a fault handler uses (it cannot wait for ticks).

    Unwritten blocks read back as zeroes. *)

type t

(** cycles charged per synchronous block operation (seek + transfer) *)
val op_cycles : int

(** [create machine ~irq_line ~blocks] attaches the disk. Block size
    equals the machine page size. *)
val create : Machine.t -> irq_line:int -> blocks:int -> t

val io_base : t -> int
val blocks : t -> int

(** [read_sync t ~block ~phys_addr] DMA-reads one block, charging
    {!op_cycles}. Raises [Invalid_argument] on a bad block number. *)
val read_sync : t -> block:int -> phys_addr:int -> unit

val write_sync : t -> block:int -> phys_addr:int -> unit

(** [reads t], [writes t] — operation counters (sync + async). *)
val reads : t -> int

val writes : t -> int
