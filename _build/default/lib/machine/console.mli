(** Write-only console device.

    Register map: 0 [DATA] (write a byte), 1 [STATUS] (always ready).
    The accumulated output is observable from tests and examples. *)

type t

val create : Machine.t -> t
val io_base : t -> int

(** [output t] is everything written so far. *)
val output : t -> string

(** [clear t] discards accumulated output. *)
val clear : t -> unit
