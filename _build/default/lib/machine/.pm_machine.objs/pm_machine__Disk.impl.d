lib/machine/disk.ml: Bytes Clock Device Hashtbl Machine Physmem Printf
