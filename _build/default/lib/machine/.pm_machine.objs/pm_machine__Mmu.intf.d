lib/machine/mmu.mli: Clock Cost Format
