lib/machine/cost.ml:
