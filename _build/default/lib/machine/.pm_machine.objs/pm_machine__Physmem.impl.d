lib/machine/physmem.ml: Array Bytes Char List String
