lib/machine/mmu.ml: Array Clock Cost Format Hashtbl List Option Printf
