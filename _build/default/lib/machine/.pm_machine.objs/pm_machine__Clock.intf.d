lib/machine/clock.mli:
