lib/machine/device.mli:
