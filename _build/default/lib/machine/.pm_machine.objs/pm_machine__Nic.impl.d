lib/machine/nic.ml: Device List Machine Physmem Queue String
