lib/machine/console.ml: Buffer Char Device Machine
