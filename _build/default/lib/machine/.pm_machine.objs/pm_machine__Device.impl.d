lib/machine/device.ml:
