lib/machine/physmem.mli:
