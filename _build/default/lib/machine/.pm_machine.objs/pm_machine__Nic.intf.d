lib/machine/nic.mli: Machine
