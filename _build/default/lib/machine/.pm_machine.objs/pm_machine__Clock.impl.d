lib/machine/clock.ml: Hashtbl List String
