lib/machine/machine.ml: Array Char Clock Cost Device List Mmu Option Physmem Printf String
