lib/machine/machine.mli: Clock Cost Device Mmu Physmem
