lib/machine/disk.mli: Machine
