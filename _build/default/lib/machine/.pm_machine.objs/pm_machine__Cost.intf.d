lib/machine/cost.mli:
