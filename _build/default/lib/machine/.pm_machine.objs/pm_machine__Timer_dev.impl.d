lib/machine/timer_dev.ml: Device Machine
