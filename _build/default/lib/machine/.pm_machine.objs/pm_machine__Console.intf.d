lib/machine/console.mli: Machine
