type t = {
  name : string;
  reg_count : int;
  reg_read : int -> int;
  reg_write : int -> int -> unit;
  tick : unit -> unit;
}

let make ~name ~reg_count ~reg_read ~reg_write ~tick =
  { name; reg_count; reg_read; reg_write; tick }
