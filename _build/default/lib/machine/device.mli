(** Device model interface.

    A device is a bank of 32-bit registers plus a [tick] function that
    advances its internal model (delivering DMA, firing timers, raising
    interrupts through the closure it was created with). Concrete models:
    {!Nic}, {!Timer_dev}, {!Console}. *)

type t = {
  name : string;
  reg_count : int;  (** number of registers; io space is 4 bytes per reg *)
  reg_read : int -> int;  (** [reg_read i] reads register [i] *)
  reg_write : int -> int -> unit;
  tick : unit -> unit;  (** advance the device model one machine tick *)
}

(** [make ~name ~reg_count ~reg_read ~reg_write ~tick] builds a device. *)
val make :
  name:string ->
  reg_count:int ->
  reg_read:(int -> int) ->
  reg_write:(int -> int -> unit) ->
  tick:(unit -> unit) ->
  t
