type t = {
  machine : Machine.t;
  irq_line : int;
  mutable io_base : int;
  mutable period : int;
  mutable ctrl : int;
  mutable count : int;
  mutable fires : int;
}

let ctrl_enable = 1
let ctrl_periodic = 2

let reg_read t = function
  | 0 -> t.period
  | 1 -> t.ctrl
  | 2 -> t.count
  | _ -> 0

let reg_write t reg v =
  match reg with
  | 0 ->
    t.period <- max 1 v;
    t.count <- t.period
  | 1 -> t.ctrl <- v land 3
  | _ -> ()

let tick t =
  if t.ctrl land ctrl_enable <> 0 then begin
    t.count <- t.count - 1;
    if t.count <= 0 then begin
      t.fires <- t.fires + 1;
      if t.ctrl land ctrl_periodic <> 0 then t.count <- t.period
      else t.ctrl <- t.ctrl land lnot ctrl_enable;
      Machine.raise_irq t.machine t.irq_line
    end
  end

let create machine ~irq_line =
  let t = { machine; irq_line; io_base = 0; period = 1; ctrl = 0; count = 1; fires = 0 } in
  let dev =
    Device.make ~name:"timer" ~reg_count:3 ~reg_read:(reg_read t)
      ~reg_write:(reg_write t) ~tick:(fun () -> tick t)
  in
  t.io_base <- Machine.attach_device machine dev;
  t

let io_base t = t.io_base
let irq_line t = t.irq_line
let fires t = t.fires
