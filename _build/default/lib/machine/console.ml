type t = { buf : Buffer.t; mutable io_base : int }

let create machine =
  let t = { buf = Buffer.create 256; io_base = 0 } in
  let reg_read = function 1 -> 1 | _ -> 0 in
  let reg_write reg v =
    if reg = 0 then Buffer.add_char t.buf (Char.chr (v land 0xff))
  in
  let dev =
    Device.make ~name:"console" ~reg_count:2 ~reg_read ~reg_write ~tick:(fun () -> ())
  in
  t.io_base <- Machine.attach_device machine dev;
  t

let io_base t = t.io_base
let output t = Buffer.contents t.buf
let clear t = Buffer.clear t.buf
