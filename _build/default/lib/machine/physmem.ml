type frame = { data : Bytes.t; mutable refcount : int }

type t = {
  page_size : int;
  total : int;
  frames : frame option array;
  mutable free : int list;
  mutable free_count : int;
}

let create ~frames ~page_size =
  if frames <= 0 || page_size <= 0 then invalid_arg "Physmem.create";
  {
    page_size;
    total = frames;
    frames = Array.make frames None;
    free = List.init frames (fun i -> i);
    free_count = frames;
  }

let page_size t = t.page_size
let total_frames t = t.total
let free_frames t = t.free_count

let alloc t =
  match t.free with
  | [] -> raise Out_of_memory
  | f :: rest ->
    t.free <- rest;
    t.free_count <- t.free_count - 1;
    t.frames.(f) <- Some { data = Bytes.make t.page_size '\000'; refcount = 1 };
    f

let frame_exn t f =
  if f < 0 || f >= t.total then invalid_arg "Physmem: frame out of range";
  match t.frames.(f) with
  | None -> invalid_arg "Physmem: frame not allocated"
  | Some fr -> fr

let ref_frame t f =
  let fr = frame_exn t f in
  fr.refcount <- fr.refcount + 1

let release t f =
  let fr = frame_exn t f in
  fr.refcount <- fr.refcount - 1;
  if fr.refcount = 0 then begin
    t.frames.(f) <- None;
    t.free <- f :: t.free;
    t.free_count <- t.free_count + 1
  end

let is_allocated t f = f >= 0 && f < t.total && t.frames.(f) <> None

let locate t addr =
  if addr < 0 then invalid_arg "Physmem: negative address";
  let f = addr / t.page_size and off = addr mod t.page_size in
  (frame_exn t f, off)

let read8 t addr =
  let fr, off = locate t addr in
  Char.code (Bytes.get fr.data off)

let write8 t addr v =
  let fr, off = locate t addr in
  Bytes.set fr.data off (Char.chr (v land 0xff))

let read32 t addr =
  read8 t addr
  lor (read8 t (addr + 1) lsl 8)
  lor (read8 t (addr + 2) lsl 16)
  lor (read8 t (addr + 3) lsl 24)

let write32 t addr v =
  write8 t addr v;
  write8 t (addr + 1) (v lsr 8);
  write8 t (addr + 2) (v lsr 16);
  write8 t (addr + 3) (v lsr 24)

let blit_string t s addr =
  String.iteri (fun i c -> write8 t (addr + i) (Char.code c)) s

let read_string t addr len =
  String.init len (fun i -> Char.chr (read8 t (addr + i)))
