(** Programmable interval timer.

    Register map:
    - 0 [PERIOD]: reload value in ticks
    - 1 [CTRL]: bit0 enable, bit1 periodic (auto-reload)
    - 2 [COUNT] (read-only): ticks until the next interrupt

    Fires its IRQ line when the countdown reaches zero; in periodic mode it
    reloads, otherwise it disables itself. Drives preemption-style clock
    events in the thread examples. *)

type t

val create : Machine.t -> irq_line:int -> t
val io_base : t -> int
val irq_line : t -> int

(** [fires t] counts interrupts raised since creation. *)
val fires : t -> int
