type t = { mutable cycles : int; counters : (string, int ref) Hashtbl.t }

let create () = { cycles = 0; counters = Hashtbl.create 16 }

let advance t n =
  assert (n >= 0);
  t.cycles <- t.cycles + n

let now t = t.cycles

let count_n t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let count t name = count_n t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  t.cycles <- 0;
  Hashtbl.reset t.counters

let measure t f =
  let before = now t in
  let result = f () in
  (result, now t - before)
