(** Simulated physical memory: a fixed pool of page frames.

    Frames are reference counted so that pages shared between protection
    domains (the memory service's [Shared] allocations) are released only
    when the last mapping goes away. *)

type t

(** [create ~frames ~page_size] makes a memory with [frames] frames of
    [page_size] bytes each. *)
val create : frames:int -> page_size:int -> t

val page_size : t -> int
val total_frames : t -> int
val free_frames : t -> int

(** [alloc t] takes a free frame (zero-filled, refcount 1).
    Raises [Out_of_memory] if none is free. *)
val alloc : t -> int

(** [ref_frame t f] increments the refcount of an allocated frame. *)
val ref_frame : t -> int -> unit

(** [release t f] decrements the refcount, returning the frame to the free
    pool when it reaches zero. *)
val release : t -> int -> unit

val is_allocated : t -> int -> bool

(** Raw byte access by physical address ([frame * page_size + offset]).
    Raises [Invalid_argument] on unallocated frames or bad offsets. *)
val read8 : t -> int -> int

val write8 : t -> int -> int -> unit

(** 32-bit little-endian access; the address need not be aligned. *)
val read32 : t -> int -> int

val write32 : t -> int -> int -> unit

(** [blit_string t s addr] writes all of [s] at physical address [addr]. *)
val blit_string : t -> string -> int -> unit

(** [read_string t addr len] reads [len] bytes at [addr]. *)
val read_string : t -> int -> int -> string
