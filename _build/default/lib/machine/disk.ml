let op_cycles = 5_000 (* an optimistically fast disk: ~100us at 50MHz *)

type pending = { block : int; addr : int; write : bool; mutable ticks_left : int }

type t = {
  machine : Machine.t;
  irq_line : int;
  mutable io_base : int;
  blocks : int;
  block_size : int;
  store : (int, Bytes.t) Hashtbl.t;
  mutable reg_block : int;
  mutable reg_addr : int;
  mutable status : int;
  mutable pending : pending option;
  mutable reads : int;
  mutable writes : int;
}

let status_busy = 1
let status_done = 2
let status_error = 4

let async_latency_ticks = 3

let check_block t block =
  if block < 0 || block >= t.blocks then
    invalid_arg (Printf.sprintf "Disk: block %d out of range" block)

let block_bytes t block =
  match Hashtbl.find_opt t.store block with
  | Some b -> b
  | None ->
    let b = Bytes.make t.block_size '\000' in
    Hashtbl.replace t.store block b;
    b

let do_read t ~block ~phys_addr =
  t.reads <- t.reads + 1;
  Physmem.blit_string (Machine.phys t.machine)
    (Bytes.to_string (block_bytes t block))
    phys_addr

let do_write t ~block ~phys_addr =
  t.writes <- t.writes + 1;
  let data = Physmem.read_string (Machine.phys t.machine) phys_addr t.block_size in
  Hashtbl.replace t.store block (Bytes.of_string data)

let reg_read t = function
  | 0 -> t.reg_block
  | 1 -> t.reg_addr
  | 3 -> t.status
  | 4 -> t.blocks
  | _ -> 0

let reg_write t reg v =
  match reg with
  | 0 -> t.reg_block <- v
  | 1 -> t.reg_addr <- v
  | 2 ->
    if t.pending <> None then t.status <- t.status lor status_error
    else if v <> 1 && v <> 2 then t.status <- t.status lor status_error
    else if t.reg_block < 0 || t.reg_block >= t.blocks then
      t.status <- t.status lor status_error
    else begin
      t.status <- t.status lor status_busy;
      t.pending <-
        Some
          { block = t.reg_block; addr = t.reg_addr; write = v = 2;
            ticks_left = async_latency_ticks }
    end
  | 3 ->
    (* write-1-to-clear for done and error *)
    if v land status_done <> 0 then t.status <- t.status land lnot status_done;
    if v land status_error <> 0 then t.status <- t.status land lnot status_error
  | _ -> ()

let tick t =
  match t.pending with
  | None -> ()
  | Some p ->
    p.ticks_left <- p.ticks_left - 1;
    if p.ticks_left <= 0 then begin
      if p.write then do_write t ~block:p.block ~phys_addr:p.addr
      else do_read t ~block:p.block ~phys_addr:p.addr;
      t.pending <- None;
      t.status <- t.status land lnot status_busy lor status_done;
      Machine.raise_irq t.machine t.irq_line
    end

let create machine ~irq_line ~blocks =
  if blocks <= 0 then invalid_arg "Disk.create: need at least one block";
  let t =
    {
      machine;
      irq_line;
      io_base = 0;
      blocks;
      block_size = Machine.page_size machine;
      store = Hashtbl.create 64;
      reg_block = 0;
      reg_addr = 0;
      status = 0;
      pending = None;
      reads = 0;
      writes = 0;
    }
  in
  let dev =
    Device.make ~name:"disk" ~reg_count:5 ~reg_read:(reg_read t)
      ~reg_write:(reg_write t) ~tick:(fun () -> tick t)
  in
  t.io_base <- Machine.attach_device machine dev;
  t

let io_base t = t.io_base
let blocks t = t.blocks

let read_sync t ~block ~phys_addr =
  check_block t block;
  Clock.advance (Machine.clock t.machine) op_cycles;
  Clock.count (Machine.clock t.machine) "disk_read";
  do_read t ~block ~phys_addr

let write_sync t ~block ~phys_addr =
  check_block t block;
  Clock.advance (Machine.clock t.machine) op_cycles;
  Clock.count (Machine.clock t.machine) "disk_write";
  do_write t ~block ~phys_addr

let reads t = t.reads
let writes t = t.writes
