(** Arbitrary-precision natural numbers.

    Numbers are immutable. The representation is a little-endian array of
    30-bit limbs, normalized so the most significant limb is non-zero
    (zero is the empty array). All operations are total unless documented
    otherwise; subtraction and division raise on domain errors.

    This module is the arithmetic substrate for the RSA signatures used by
    Paramecium's certification service. It deliberately has no dependency
    on randomness; probabilistic primality lives in [Pm_crypto.Prime]. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative [n]. Raises [Invalid_argument]
    if [n < 0]. *)
val of_int : int -> t

(** [to_int x] is [Some n] if [x] fits in an OCaml [int]. *)
val to_int : t -> int option

(** [to_int_exn x] raises [Failure] if [x] does not fit in an [int]. *)
val to_int_exn : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val add : t -> t -> t

(** [sub a b] is [a - b]. Raises [Invalid_argument] if [a < b]. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]
    if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow b e] is [b]^[e] for a machine-int exponent [e >= 0]. *)
val pow : t -> int -> t

(** [mod_pow b e m] is [b]^[e] mod [m]. Raises [Division_by_zero] if
    [m] is zero. *)
val mod_pow : t -> t -> t -> t

val gcd : t -> t -> t

(** [mod_inv a m] is the multiplicative inverse of [a] modulo [m].
    Raises [Not_found] if [gcd a m <> 1]. *)
val mod_inv : t -> t -> t

(** [shift_left x k] is [x * 2^k]; [k >= 0]. *)
val shift_left : t -> int -> t

(** [shift_right x k] is [x / 2^k]; [k >= 0]. *)
val shift_right : t -> int -> t

(** [bit_length x] is the position of the highest set bit plus one;
    [bit_length zero = 0]. *)
val bit_length : t -> int

(** [test_bit x i] is the value of bit [i] (little-endian). *)
val test_bit : t -> int -> bool

val is_even : t -> bool
val is_odd : t -> bool

(** Decimal conversion. [of_string] accepts an optional ["0x"] prefix for
    hexadecimal; raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val to_hex : t -> string

(** Big-endian byte-string conversion, as used for signature blocks.
    [to_bytes_be ~len x] left-pads with zero bytes; raises
    [Invalid_argument] if [x] needs more than [len] bytes. *)
val of_bytes_be : string -> t

val to_bytes_be : ?len:int -> t -> string

val pp : Format.formatter -> t -> unit
