(* Little-endian arrays of 30-bit limbs. Invariant: the most significant
   limb (last element) is non-zero; zero is the empty array. 30-bit limbs
   guarantee that a limb product plus carries fits in a 63-bit OCaml int. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero x = Array.length x = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr base_bits) in
    Array.of_list (limbs n)
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let bits_in_limb l =
  (* number of significant bits in a single limb, 0 < l < base *)
  let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + 1) in
  go l 0

let bit_length x =
  let n = Array.length x in
  if n = 0 then 0 else ((n - 1) * base_bits) + bits_in_limb x.(n - 1)

let to_int x =
  if bit_length x > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length x - 1 downto 0 do
      v := (!v lsl base_bits) lor x.(i)
    done;
    Some !v
  end

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> failwith "Nat.to_int_exn: does not fit"

let test_bit x i =
  let limb = i / base_bits and bit = i mod base_bits in
  limb < Array.length x && (x.(limb) lsr bit) land 1 = 1

let is_even x = Array.length x = 0 || x.(0) land 1 = 0
let is_odd x = not (is_even x)

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- p land mask;
        carry := p lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r
  end

(* Division of [a] by a single limb [d]; returns quotient array and
   remainder limb. *)
let short_divmod (a : t) (d : int) : t * int =
  assert (d > 0 && d < base);
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Shift an array left by [s] bits (0 <= s < base_bits), result has one
   extra limb to hold the overflow. *)
let shl_limbs (a : int array) (s : int) : int array =
  let n = Array.length a in
  let r = Array.make (n + 1) 0 in
  if s = 0 then Array.blit a 0 r 0 n
  else begin
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land mask;
      carry := v lsr base_bits
    done;
    r.(n) <- !carry
  end;
  r

(* Shift an array right by [s] bits (0 <= s < base_bits). *)
let shr_limbs (a : int array) (s : int) : int array =
  let n = Array.length a in
  let r = Array.make n 0 in
  if s = 0 then Array.blit a 0 r 0 n
  else
    for i = 0 to n - 1 do
      let hi = if i + 1 < n then a.(i + 1) else 0 in
      r.(i) <- (a.(i) lsr s) lor ((hi lsl (base_bits - s)) land mask)
    done;
  r

(* Knuth algorithm D (TAOCP vol. 2, 4.3.1). Requires [Array.length b >= 2]
   and [a >= b]. *)
let knuth_divmod (a : t) (b : t) : t * t =
  let n = Array.length b in
  let m = Array.length a - n in
  assert (n >= 2 && m >= 0);
  (* D1: normalize so the divisor's top limb has its high bit set. *)
  let s = base_bits - bits_in_limb b.(n - 1) in
  let u = shl_limbs a s in
  (* [u] has m+n+1 limbs (the shl added one). *)
  let v = shl_limbs b s in
  assert (v.(n) = 0);
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    (* D3: estimate qhat from the top two limbs of u against v's top. *)
    let top = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top / v.(n - 1)) in
    let rhat = ref (top mod v.(n - 1)) in
    let adjusting = ref true in
    while !adjusting do
      if !qhat >= base
         || !qhat * v.(n - 2) > (!rhat lsl base_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + v.(n - 1);
        if !rhat >= base then adjusting := false
      end
      else adjusting := false
    done;
    (* D4: multiply and subtract u[j..j+n] -= qhat * v. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    (* D5/D6: if the subtraction went negative, qhat was one too big. *)
    if d < 0 then begin
      u.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let sum = u.(i + j) + v.(i) + !c in
        u.(i + j) <- sum land mask;
        c := sum lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  (* D8: the remainder is u[0..n-1] shifted back. *)
  let r = shr_limbs (Array.sub u 0 n) s in
  (normalize q, normalize r)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = short_divmod a b.(0) in
    (q, of_int r)
  end
  else knuth_divmod a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let shift_left x k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let shifted = shl_limbs x bits in
    let r = Array.make (limbs + Array.length shifted) 0 in
    Array.blit shifted 0 r limbs (Array.length shifted);
    normalize r
  end

let shift_right x k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    if limbs >= Array.length x then zero
    else begin
      let dropped = Array.sub x limbs (Array.length x - limbs) in
      normalize (shr_limbs dropped bits)
    end
  end

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let mod_pow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let b = rem b m in
    let r = ref one in
    for i = bit_length e - 1 downto 0 do
      r := rem (mul !r !r) m;
      if test_bit e i then r := rem (mul !r b) m
    done;
    !r
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Signed values, used only inside the extended Euclid below. *)
type signed = { neg : bool; mag : t }

let s_of_nat mag = { neg = false; mag }

let s_sub_mul x q y =
  (* x - q*y for signed x, y and natural q *)
  let qy = mul q y.mag in
  let qy = { neg = y.neg; mag = qy } in
  (* x - qy *)
  if x.neg = qy.neg then begin
    if compare x.mag qy.mag >= 0 then { neg = x.neg; mag = sub x.mag qy.mag }
    else { neg = not x.neg && not (is_zero (sub qy.mag x.mag)); mag = sub qy.mag x.mag }
  end
  else { neg = x.neg; mag = add x.mag qy.mag }

let mod_inv a m =
  if is_zero m then raise Division_by_zero;
  let a = rem a m in
  if is_zero a then raise Not_found;
  (* Extended Euclid tracking only the coefficient of [a]. *)
  let rec go r0 r1 s0 s1 =
    if is_zero r1 then (r0, s0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 r2 s1 (s_sub_mul s0 q s1)
    end
  in
  let g, s = go a m (s_of_nat one) (s_of_nat zero) in
  if not (equal g one) then raise Not_found;
  let x = rem s.mag m in
  if s.neg && not (is_zero x) then sub m x else x

let chunk_base = 1_000_000_000 (* 10^9 < 2^30 *)

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks x acc =
      if is_zero x then acc
      else begin
        let q, r = short_divmod x chunk_base in
        chunks q (r :: acc)
      end
    in
    (match chunks x [] with
     | [] -> assert false
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let to_hex x =
  if is_zero x then "0"
  else begin
    (* print 4 bits at a time from the top *)
    let bits = bit_length x in
    let nibbles = (bits + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let v =
        (if test_bit x ((i * 4) + 3) then 8 else 0)
        + (if test_bit x ((i * 4) + 2) then 4 else 0)
        + (if test_bit x ((i * 4) + 1) then 2 else 0)
        + if test_bit x (i * 4) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_string s =
  let fail () = invalid_arg "Nat.of_string: malformed number" in
  if String.length s = 0 then fail ();
  if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then begin
    let acc = ref zero in
    for i = 2 to String.length s - 1 do
      let d =
        match s.[i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail ()
      in
      acc := add (shift_left !acc 4) (of_int d)
    done;
    !acc
  end
  else begin
    String.iter (function '0' .. '9' -> () | _ -> fail ()) s;
    let acc = ref zero in
    let i = ref 0 in
    let n = String.length s in
    let big_chunk = of_int chunk_base in
    while !i < n do
      let len = Stdlib.min 9 (n - !i) in
      let chunk = int_of_string (String.sub s !i len) in
      let rec pow10 k = if k = 0 then 1 else 10 * pow10 (k - 1) in
      let scale = if len = 9 then big_chunk else of_int (pow10 len) in
      acc := add (mul !acc scale) (of_int chunk);
      i := !i + len
    done;
    !acc
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ?len x =
  let nbytes = (bit_length x + 7) / 8 in
  let out_len =
    match len with
    | None -> Stdlib.max nbytes 1
    | Some l ->
      if nbytes > l then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let b = Bytes.make out_len '\000' in
  for i = 0 to nbytes - 1 do
    let byte =
      (if test_bit x ((i * 8) + 7) then 128 else 0)
      lor (if test_bit x ((i * 8) + 6) then 64 else 0)
      lor (if test_bit x ((i * 8) + 5) then 32 else 0)
      lor (if test_bit x ((i * 8) + 4) then 16 else 0)
      lor (if test_bit x ((i * 8) + 3) then 8 else 0)
      lor (if test_bit x ((i * 8) + 2) then 4 else 0)
      lor (if test_bit x ((i * 8) + 1) then 2 else 0)
      lor if test_bit x (i * 8) then 1 else 0
    in
    Bytes.set b (out_len - 1 - i) (Char.chr byte)
  done;
  Bytes.to_string b

let pp fmt x = Format.pp_print_string fmt (to_string x)
