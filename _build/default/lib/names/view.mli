(** Name-space views: inheritance plus per-object overrides.

    "The name space is usually inherited from a parent ... Each object,
    however, can provide a set of overrides which allows it to locally
    reconfigure its name space: that is, control the child objects it will
    import." A view is a chain of override tables ending at the shared
    {!Namespace.t}; binding consults the nearest override first, so a
    parent can, e.g., point a child's [/shared/network] at a monitoring
    interposer without affecting anyone else. *)

type t

(** [of_namespace ns] is the root view: no overrides, no parent. *)
val of_namespace : Namespace.t -> t

(** [derive ?overrides parent] makes a child view. *)
val derive : ?overrides:(Path.t * int) list -> t -> t

val parent : t -> t option
val namespace : t -> Namespace.t

(** [add_override v path handle] installs or updates a local override. *)
val add_override : t -> Path.t -> int -> unit

(** [remove_override v path] removes a local override (no-op if absent). *)
val remove_override : t -> Path.t -> unit

val overrides : t -> (Path.t * int) list

(** [bind ctx v path] resolves a name through the override chain and then
    the underlying name space, charging name-resolution costs against the
    context's clock. *)
val bind : Pm_obj.Call_ctx.t -> t -> Path.t -> (int, Namespace.error) result

(** [bind_exn ctx v path] raises {!Namespace.Name_error} on failure. *)
val bind_exn : Pm_obj.Call_ctx.t -> t -> Path.t -> int
