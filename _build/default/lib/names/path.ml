type t = string list (* segments, outermost first *)

let root = []

let valid_segment s =
  String.length s > 0
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true | _ -> false)
       s

let check_segment s =
  if not (valid_segment s) then invalid_arg (Printf.sprintf "Path: bad segment %S" s)

let of_string s =
  if String.length s = 0 || s.[0] <> '/' then
    invalid_arg (Printf.sprintf "Path.of_string: %S is not absolute" s);
  if String.equal s "/" then root
  else begin
    let segs = String.split_on_char '/' (String.sub s 1 (String.length s - 1)) in
    List.iter check_segment segs;
    segs
  end

let to_string = function [] -> "/" | segs -> "/" ^ String.concat "/" segs

let segments t = t

let child t seg =
  check_segment seg;
  t @ [ seg ]

let parent = function
  | [] -> None
  | segs -> Some (List.filteri (fun i _ -> i < List.length segs - 1) segs)

let basename = function [] -> None | segs -> Some (List.nth segs (List.length segs - 1))

let length = List.length

let equal a b = a = b
let compare = Stdlib.compare

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: q' -> String.equal x y && is_prefix p' q'

let pp fmt t = Format.pp_print_string fmt (to_string t)
