module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost

type t = {
  ns : Namespace.t;
  parent : t option;
  mutable ovr : (Path.t * int) list; (* nearest-first association list *)
}

let of_namespace ns = { ns; parent = None; ovr = [] }

let derive ?(overrides = []) parent =
  { ns = parent.ns; parent = Some parent; ovr = overrides }

let parent t = t.parent
let namespace t = t.ns

let add_override t path handle =
  t.ovr <- (path, handle) :: List.filter (fun (p, _) -> not (Path.equal p path)) t.ovr

let remove_override t path =
  t.ovr <- List.filter (fun (p, _) -> not (Path.equal p path)) t.ovr

let overrides t = t.ovr

let bind (ctx : Pm_obj.Call_ctx.t) t path =
  let costs = ctx.Pm_obj.Call_ctx.costs in
  let clock = ctx.Pm_obj.Call_ctx.clock in
  Clock.count clock "ns_bind";
  (* walk the override chain outwards, charging per override consulted *)
  let rec through_views view =
    match view with
    | None ->
      Clock.advance clock (Path.length path * costs.Cost.ns_component);
      Namespace.lookup t.ns path
    | Some v ->
      let rec scan = function
        | [] -> through_views v.parent
        | (p, h) :: rest ->
          Clock.advance clock costs.Cost.ns_override;
          if Path.equal p path then Ok h else scan rest
      in
      scan v.ovr
  in
  through_views (Some t)

let bind_exn ctx t path =
  match bind ctx t path with Ok h -> h | Error e -> raise (Namespace.Name_error e)
