lib/names/view.ml: List Namespace Path Pm_machine Pm_obj
