lib/names/namespace.mli: Path
