lib/names/path.mli: Format
