lib/names/path.ml: Format List Printf Stdlib String
