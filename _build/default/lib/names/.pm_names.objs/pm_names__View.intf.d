lib/names/view.mli: Namespace Path Pm_obj
