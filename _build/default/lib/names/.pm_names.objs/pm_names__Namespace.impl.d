lib/names/namespace.ml: Hashtbl List Path Printexc Printf String
