type node = Entry of int | Dir of dir
and dir = (string, node) Hashtbl.t

type t = { root : dir }

type error =
  | Not_found of Path.t
  | Already_bound of Path.t
  | Not_a_directory of Path.t
  | Is_a_directory of Path.t

exception Name_error of error

let error_to_string = function
  | Not_found p -> Printf.sprintf "%s: not found" (Path.to_string p)
  | Already_bound p -> Printf.sprintf "%s: already bound" (Path.to_string p)
  | Not_a_directory p -> Printf.sprintf "%s: not a directory" (Path.to_string p)
  | Is_a_directory p -> Printf.sprintf "%s: is a directory" (Path.to_string p)

let () =
  Printexc.register_printer (function
    | Name_error e -> Some ("Namespace.Name_error: " ^ error_to_string e)
    | _ -> None)

let create () = { root = Hashtbl.create 32 }

(* Walk to the directory holding the last segment, optionally creating
   intermediate directories. Returns the directory and the final segment. *)
let walk t path ~create_dirs =
  match Path.segments path with
  | [] -> Error (Is_a_directory path)
  | segs ->
    let rec go dir prefix = function
      | [] -> assert false
      | [ last ] -> Ok (dir, last)
      | seg :: rest ->
        let prefix = Path.child prefix seg in
        (match Hashtbl.find_opt dir seg with
        | Some (Dir d) -> go d prefix rest
        | Some (Entry _) -> Error (Not_a_directory prefix)
        | None ->
          if create_dirs then begin
            let d = Hashtbl.create 8 in
            Hashtbl.add dir seg (Dir d);
            go d prefix rest
          end
          else Error (Not_found prefix))
    in
    go t.root Path.root segs

let register t path handle =
  match walk t path ~create_dirs:true with
  | Error _ as e -> e
  | Ok (dir, last) ->
    (match Hashtbl.find_opt dir last with
    | Some _ -> Error (Already_bound path)
    | None ->
      Hashtbl.add dir last (Entry handle);
      Ok ())

let unregister t path =
  match walk t path ~create_dirs:false with
  | Error _ as e -> e
  | Ok (dir, last) ->
    (match Hashtbl.find_opt dir last with
    | Some (Entry _) ->
      Hashtbl.remove dir last;
      Ok ()
    | Some (Dir _) -> Error (Is_a_directory path)
    | None -> Error (Not_found path))

let lookup t path =
  match walk t path ~create_dirs:false with
  | Error _ as e -> e
  | Ok (dir, last) ->
    (match Hashtbl.find_opt dir last with
    | Some (Entry h) -> Ok h
    | Some (Dir _) -> Error (Is_a_directory path)
    | None -> Error (Not_found path))

let replace t path handle =
  match walk t path ~create_dirs:false with
  | Error _ as e -> e
  | Ok (dir, last) ->
    (match Hashtbl.find_opt dir last with
    | Some (Entry old) ->
      Hashtbl.replace dir last (Entry handle);
      Ok old
    | Some (Dir _) -> Error (Is_a_directory path)
    | None -> Error (Not_found path))

let find_dir t path =
  let rec go dir prefix = function
    | [] -> Ok dir
    | seg :: rest ->
      let prefix = Path.child prefix seg in
      (match Hashtbl.find_opt dir seg with
      | Some (Dir d) -> go d prefix rest
      | Some (Entry _) -> Error (Not_a_directory prefix)
      | None -> Error (Not_found prefix))
  in
  go t.root Path.root (Path.segments path)

let list t path =
  match find_dir t path with
  | Error _ as e -> e
  | Ok dir ->
    let entries =
      Hashtbl.fold
        (fun seg node acc ->
          match node with
          | Entry h -> (seg, Some h) :: acc
          | Dir _ -> (seg, None) :: acc)
        dir []
    in
    Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) entries)

let exists t path =
  match Path.segments path with
  | [] -> true
  | _ ->
    (match walk t path ~create_dirs:false with
    | Error _ -> false
    | Ok (dir, last) -> Hashtbl.mem dir last)

let iter t f =
  let rec go prefix dir =
    Hashtbl.fold (fun seg node acc -> (seg, node) :: acc) dir []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (seg, node) ->
           let p = Path.child prefix seg in
           match node with Entry h -> f p h | Dir d -> go p d)
  in
  go Path.root t.root
