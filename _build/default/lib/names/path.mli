(** Instance-name paths, e.g. ["/shared/network"].

    A path is a non-empty sequence of segments; segments contain only
    letters, digits, and ['_' '.' '-']. The root itself is the empty
    path. *)

type t

val root : t

(** [of_string s] parses an absolute path like ["/a/b"]. Raises
    [Invalid_argument] on malformed input. *)
val of_string : string -> t

val to_string : t -> string

val segments : t -> string list

(** [child p seg] appends one segment (validated). *)
val child : t -> string -> t

(** [parent p] drops the last segment; [None] for the root. *)
val parent : t -> t option

(** [basename p] is the last segment; [None] for the root. *)
val basename : t -> string option

val length : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** [is_prefix p q] is true when [p] is a (possibly equal) prefix of [q]. *)
val is_prefix : t -> t -> bool

val pp : Format.formatter -> t -> unit
