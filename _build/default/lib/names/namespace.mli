(** The hierarchical object-instance name space.

    "Each object has its own instance name and is registered in a
    hierarchical name space together with its object handle." Entries map
    names to handles; interior nodes are directories. Intermediate
    directories are created implicitly on registration.

    Interposition is a first-class operation: [replace] swaps the handle
    stored at a name and returns the old one, so "all further lookups ...
    will result in a reference to the interposing agent". *)

type t

type error =
  | Not_found of Path.t
  | Already_bound of Path.t
  | Not_a_directory of Path.t
  | Is_a_directory of Path.t

exception Name_error of error

val error_to_string : error -> string

val create : unit -> t

(** [register t path handle] binds a name. *)
val register : t -> Path.t -> int -> (unit, error) result

(** [unregister t path] removes a binding (not a directory). *)
val unregister : t -> Path.t -> (unit, error) result

(** [lookup t path] resolves a name to its handle. *)
val lookup : t -> Path.t -> (int, error) result

(** [replace t path handle] atomically swaps the handle at [path],
    returning the previous one — the interposition primitive. *)
val replace : t -> Path.t -> int -> (int, error) result

(** [list t path] lists a directory's entries as
    [(segment, handle option)] — [None] marks a subdirectory. *)
val list : t -> Path.t -> ((string * int option) list, error) result

(** [exists t path] is true for both entries and directories. *)
val exists : t -> Path.t -> bool

(** [iter t f] applies [f path handle] to every binding, in path order. *)
val iter : t -> (Path.t -> int -> unit) -> unit
