(** Invocation context threaded through every method call.

    Carries the machine clock and cost table so that any code on the call
    path — dispatcher, proxy, interposer, component — charges cycles to
    the same virtual clock, plus the protection domain the call originates
    from, which cross-domain proxies check and switch. *)

type t = {
  clock : Pm_machine.Clock.t;
  costs : Pm_machine.Cost.t;
  caller_domain : int;  (** protection domain the call is issued from *)
  origin_domain : int;
      (** domain on whose behalf the whole call chain runs; unchanged when
          a proxy re-issues the call inside the target's domain, so kernel
          services can authorize and account against the real client *)
}

val make : clock:Pm_machine.Clock.t -> costs:Pm_machine.Cost.t -> caller_domain:int -> t

(** [in_domain t d] is [t] reissued from domain [d]; the origin domain is
    preserved. *)
val in_domain : t -> int -> t

(** [charge t n] advances the clock by [n] cycles. *)
val charge : t -> int -> unit

(** [work t n] charges [n] units of straight-line component work. *)
val work : t -> int -> unit

(** [access t n] records [n] component memory accesses: charges the bus
    cost and bumps the clock's ["component_mem_access"] counter. The SFI
    sandbox baseline taxes exactly these accesses, so any per-byte work a
    component does must go through here. *)
val access : t -> int -> unit

(** [note_access t n] records [n] accesses for sandbox accounting without
    charging bus cycles — for code whose accesses already went through the
    machine's memory bus (which charges them itself). *)
val note_access : t -> int -> unit

(** [accesses t] reads the cumulative component access count. *)
val accesses : t -> int
