type 'a t = { mutable next : int; tbl : (int, 'a) Hashtbl.t }

let create () = { next = 1; tbl = Hashtbl.create 64 }

let fresh t =
  let h = t.next in
  t.next <- h + 1;
  h

let put t handle v = Hashtbl.replace t.tbl handle v
let get t handle = Hashtbl.find_opt t.tbl handle
let remove t handle = Hashtbl.remove t.tbl handle
let size t = Hashtbl.length t.tbl
