(** Compositions: objects composed of other object instances.

    "Composition is to objects what objects are to data: an encapsulation
    technique" — the Paramecium kernel itself is one. A composition is an
    ordinary {!Instance.t} whose exported interfaces forward to its
    children, so composition nests recursively.

    A [Static] composition models link-time assembly (the resident part of
    the kernel): its children cannot be replaced. A [Dynamic] composition
    is assembled at run time and allows children to be swapped for new
    instances, re-wiring the exported interfaces. *)

type mode = Static | Dynamic

(** One exported interface: child [child]'s interface [iface], re-exported
    under [as_name]. *)
type export = { as_name : string; child : string; iface : string }

type t

val make :
  Instance.t Registry.t ->
  class_name:string ->
  domain:int ->
  mode:mode ->
  children:(string * Instance.t) list ->
  exports:export list ->
  t

(** [instance t] is the composition seen as an ordinary object. *)
val instance : t -> Instance.t

val mode : t -> mode
val child : t -> string -> Instance.t option
val children : t -> (string * Instance.t) list

(** [replace_child t name inst] swaps a child of a [Dynamic] composition;
    the new instance must export every interface the composition forwards
    to that child. Raises [Invalid_argument] on a [Static] composition, an
    unknown child, or a child missing a forwarded interface. *)
val replace_child : t -> string -> Instance.t -> unit

(** [add_child t name inst] extends a [Dynamic] composition. *)
val add_child : t -> string -> Instance.t -> unit
