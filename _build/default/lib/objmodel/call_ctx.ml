type t = {
  clock : Pm_machine.Clock.t;
  costs : Pm_machine.Cost.t;
  caller_domain : int;
  origin_domain : int;
}

let make ~clock ~costs ~caller_domain =
  { clock; costs; caller_domain; origin_domain = caller_domain }

let in_domain t d = { t with caller_domain = d }

let charge t n = Pm_machine.Clock.advance t.clock n

let work t n = Pm_machine.Clock.advance t.clock (n * t.costs.Pm_machine.Cost.cycle)

let access_counter = "component_mem_access"

let access t n =
  Pm_machine.Clock.advance t.clock (n * t.costs.Pm_machine.Cost.mem_read);
  Pm_machine.Clock.count_n t.clock access_counter n

let note_access t n = Pm_machine.Clock.count_n t.clock access_counter n

let accesses t = Pm_machine.Clock.counter t.clock access_counter
