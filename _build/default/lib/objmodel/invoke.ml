module Cost = Pm_machine.Cost
module Clock = Pm_machine.Clock

let call (ctx : Call_ctx.t) obj ~iface ~meth args =
  Clock.advance ctx.clock ctx.costs.Cost.indirect_call;
  Clock.count ctx.clock "method_invocation";
  match Instance.resolve_method obj ~iface ~meth with
  | Error e -> Error e
  | Ok (m, hops) ->
    if hops > 0 then begin
      Clock.advance ctx.clock (hops * ctx.costs.Cost.delegation_hop);
      Clock.count ctx.clock "delegation"
    end;
    if not (Vtype.check_args m.Iface.msig args) then
      Error
        (Oerror.Type_error
           (Printf.sprintf "%s.%s expects %s" iface meth
              (Vtype.to_string_signature m.Iface.msig)))
    else begin
      match m.Iface.impl ctx args with
      | Error _ as e -> e
      | Ok ret ->
        if Vtype.check m.Iface.msig.Vtype.ret ret then Ok ret
        else
          Error
            (Oerror.Type_error
               (Printf.sprintf "%s.%s returned an ill-typed value" iface meth))
    end

let call_exn ctx obj ~iface ~meth args =
  match call ctx obj ~iface ~meth args with
  | Ok v -> v
  | Error e -> Oerror.fail e
