type t =
  | Tunit
  | Tbool
  | Tint
  | Tstr
  | Tblob
  | Tpair of t * t
  | Tlist of t
  | Thandle
  | Tany

type signature = { args : t list; ret : t }

let rec check ty v =
  match (ty, v) with
  | Tany, _ -> true
  | Tunit, Value.Unit -> true
  | Tbool, Value.Bool _ -> true
  | Tint, Value.Int _ -> true
  | Tstr, Value.Str _ -> true
  | Tblob, Value.Blob _ -> true
  | Tpair (a, b), Value.Pair (x, y) -> check a x && check b y
  | Tlist ty, Value.List xs -> List.for_all (check ty) xs
  | Thandle, Value.Handle _ -> true
  | (Tunit | Tbool | Tint | Tstr | Tblob | Tpair _ | Tlist _ | Thandle), _ -> false

let check_args sg vs =
  List.length sg.args = List.length vs && List.for_all2 check sg.args vs

let rec pp fmt = function
  | Tunit -> Format.pp_print_string fmt "unit"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tint -> Format.pp_print_string fmt "int"
  | Tstr -> Format.pp_print_string fmt "str"
  | Tblob -> Format.pp_print_string fmt "blob"
  | Tpair (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Tlist t -> Format.fprintf fmt "%a list" pp t
  | Thandle -> Format.pp_print_string fmt "handle"
  | Tany -> Format.pp_print_string fmt "any"

let pp_signature fmt sg =
  Format.fprintf fmt "(%a) -> %a"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
    sg.args pp sg.ret

let to_string_signature sg = Format.asprintf "%a" pp_signature sg
