(** Run-time inlining of interface methods.

    §2 of the paper: "We are, however, contemplating run time inline
    techniques in case this might turn out to be a bottleneck." This
    implements that future work as binding-time specialization: resolving
    an (interface, method) pair once — paying dispatch and delegation
    there — and returning a direct closure whose per-call price is a
    plain procedure call plus a one-cycle revocation guard.

    The closure captures the method implementation at specialization
    time. Revocation is honored on every call, but later structural
    changes to the instance (interface overrides, delegate re-wiring,
    composite child replacement) are NOT seen — exactly the coherence
    hazard that makes run-time inlining a trade-off. Re-specialize after
    reconfiguring. *)

type specialized = Value.t list -> (Value.t, Oerror.t) result

(** [specialize ctx obj ~iface ~meth] resolves and type-checks the
    binding once, returning the direct closure. The per-call closure
    still validates argument and result types. *)
val specialize :
  Call_ctx.t ->
  Instance.t ->
  iface:string ->
  meth:string ->
  (specialized, Oerror.t) result

val specialize_exn :
  Call_ctx.t -> Instance.t -> iface:string -> meth:string -> specialized
