type mode = Static | Dynamic

type export = { as_name : string; child : string; iface : string }

type t = {
  instance : Instance.t;
  mode : mode;
  mutable kids : (string * Instance.t) list;
  exports : export list;
}

let find_child t name = List.assoc_opt name t.kids

(* Build the forwarding interface for one export, resolving the child at
   call time so child replacement transparently re-wires. *)
let forwarding_iface t e =
  match find_child t e.child with
  | None -> invalid_arg (Printf.sprintf "Composite: no child %S" e.child)
  | Some kid ->
    (match Instance.get_interface kid e.iface with
    | None ->
      invalid_arg
        (Printf.sprintf "Composite: child %S lacks interface %S" e.child e.iface)
    | Some src ->
      let forward_method (m : Iface.meth) =
        let impl ctx args =
          match find_child t e.child with
          | None -> Error (Oerror.Fault ("composition lost child " ^ e.child))
          | Some kid -> Invoke.call ctx kid ~iface:e.iface ~meth:m.Iface.mname args
        in
        { m with Iface.impl }
      in
      Iface.make ~version:src.Iface.version ~name:e.as_name
        (List.map forward_method src.Iface.methods))

let rebuild_exports t =
  t.instance.Instance.interfaces <- List.map (forwarding_iface t) t.exports

let make registry ~class_name ~domain ~mode ~children ~exports =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Composite.make: duplicate child %S" n);
      Hashtbl.add seen n ())
    children;
  let instance = Instance.create registry ~class_name ~domain [] in
  let t = { instance; mode; kids = children; exports } in
  rebuild_exports t;
  t

let instance t = t.instance
let mode t = t.mode
let child t name = find_child t name
let children t = t.kids

let replace_child t name inst =
  if t.mode = Static then
    invalid_arg "Composite.replace_child: static composition (link-time)";
  if find_child t name = None then
    invalid_arg (Printf.sprintf "Composite.replace_child: no child %S" name);
  List.iter
    (fun e ->
      if String.equal e.child name && Instance.get_interface inst e.iface = None
      then
        invalid_arg
          (Printf.sprintf
             "Composite.replace_child: replacement lacks interface %S" e.iface))
    t.exports;
  t.kids <- List.map (fun (n, k) -> if String.equal n name then (n, inst) else (n, k)) t.kids;
  rebuild_exports t

let add_child t name inst =
  if t.mode = Static then invalid_arg "Composite.add_child: static composition";
  if find_child t name <> None then
    invalid_arg (Printf.sprintf "Composite.add_child: duplicate child %S" name);
  t.kids <- t.kids @ [ (name, inst) ]
