type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Blob of bytes
  | Pair of t * t
  | List of t list
  | Handle of int

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Blob x, Blob y -> Bytes.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Handle x, Handle y -> x = y
  | (Unit | Bool _ | Int _ | Str _ | Blob _ | Pair _ | List _ | Handle _), _ -> false

let rec words = function
  | Unit -> 0
  | Bool _ | Int _ | Handle _ -> 1
  | Str s -> 1 + ((String.length s + 3) / 4)
  | Blob b -> 1 + ((Bytes.length b + 3) / 4)
  | Pair (a, b) -> words a + words b
  | List xs -> 1 + List.fold_left (fun acc v -> acc + words v) 0 xs

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int n -> Format.pp_print_int fmt n
  | Str s -> Format.fprintf fmt "%S" s
  | Blob b -> Format.fprintf fmt "<blob:%d>" (Bytes.length b)
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | List xs ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp)
      xs
  | Handle h -> Format.fprintf fmt "#%d" h

let to_string v = Format.asprintf "%a" pp v

let to_int = function Int n -> n | v -> invalid_arg ("Value.to_int: " ^ to_string v)
let to_str = function Str s -> s | v -> invalid_arg ("Value.to_str: " ^ to_string v)
let to_bool = function Bool b -> b | v -> invalid_arg ("Value.to_bool: " ^ to_string v)
let to_blob = function Blob b -> b | v -> invalid_arg ("Value.to_blob: " ^ to_string v)

let to_handle = function
  | Handle h -> h
  | v -> invalid_arg ("Value.to_handle: " ^ to_string v)

let to_list = function List l -> l | v -> invalid_arg ("Value.to_list: " ^ to_string v)
