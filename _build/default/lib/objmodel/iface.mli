(** Named interfaces: "a set of methods, state pointers and type
    information".

    An object exports one or more named interfaces; adding an interface
    (say a measurement interface on an RPC object) does not disturb
    existing users, which is the paper's answer to interface evolution.
    Methods are invoked only through {!Invoke}; the implementation type
    receives the {!Call_ctx} so every layer charges the same clock. *)

type impl = Call_ctx.t -> Value.t list -> (Value.t, Oerror.t) result

type meth = { mname : string; msig : Vtype.signature; impl : impl }

type t = {
  name : string;  (** interface name, e.g. "netdev" *)
  version : int;
  methods : meth list;
  state : Value.t ref option;  (** the interface's state pointer *)
}

val make : ?version:int -> ?state:Value.t ref -> name:string -> meth list -> t

(** [meth ~name ~args ~ret impl] builds a method descriptor. *)
val meth : name:string -> args:Vtype.t list -> ret:Vtype.t -> impl -> meth

val find_method : t -> string -> meth option

val method_names : t -> string list

(** [type_info t] renders every method signature, the interface's
    published type information. *)
val type_info : t -> (string * string) list

(** [override t ~methods] is [t] with the given methods replaced (matched
    by name) — the building block of interposing agents. Methods not
    mentioned are kept. Raises [Invalid_argument] if a replacement names a
    method that does not exist. *)
val override : t -> methods:meth list -> t
