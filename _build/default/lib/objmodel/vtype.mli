(** Interface type information.

    Each interface carries "a set of methods, state pointers and type
    information"; this module is the type-information part. Method
    signatures are checked on every dynamic invocation, so a component
    swapped in at run time cannot silently violate its contract. *)

type t =
  | Tunit
  | Tbool
  | Tint
  | Tstr
  | Tblob
  | Tpair of t * t
  | Tlist of t
  | Thandle
  | Tany  (** matches anything; used by generic forwarders *)

type signature = { args : t list; ret : t }

(** [check ty v] is true when [v] inhabits [ty]. *)
val check : t -> Value.t -> bool

(** [check_args sg vs] validates arity and each argument. *)
val check_args : signature -> Value.t list -> bool

val pp : Format.formatter -> t -> unit
val pp_signature : Format.formatter -> signature -> unit

(** [to_string_signature sg] is a compact rendering like
    ["(int, str) -> blob"], used as human-readable type info. *)
val to_string_signature : signature -> string
