type impl = Call_ctx.t -> Value.t list -> (Value.t, Oerror.t) result

type meth = { mname : string; msig : Vtype.signature; impl : impl }

type t = {
  name : string;
  version : int;
  methods : meth list;
  state : Value.t ref option;
}

let make ?(version = 1) ?state ~name methods =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem seen m.mname then
        invalid_arg (Printf.sprintf "Iface.make: duplicate method %S" m.mname);
      Hashtbl.add seen m.mname ())
    methods;
  { name; version; methods; state }

let meth ~name ~args ~ret impl = { mname = name; msig = { Vtype.args; ret }; impl }

let find_method t name = List.find_opt (fun m -> String.equal m.mname name) t.methods

let method_names t = List.map (fun m -> m.mname) t.methods

let type_info t =
  List.map (fun m -> (m.mname, Vtype.to_string_signature m.msig)) t.methods

let override t ~methods =
  List.iter
    (fun m ->
      if find_method t m.mname = None then
        invalid_arg (Printf.sprintf "Iface.override: no method %S to override" m.mname))
    methods;
  let replace m =
    match List.find_opt (fun r -> String.equal r.mname m.mname) methods with
    | Some r -> r
    | None -> m
  in
  { t with methods = List.map replace t.methods }
