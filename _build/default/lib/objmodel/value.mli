(** Dynamic values passed through interface methods.

    The software architecture is programming-language independent, so
    method arguments and results use a universal value type rather than
    OCaml's static types. Proxies, interposing agents and monitors can
    then forward any method generically. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Blob of bytes  (** bulk data, e.g. a packet *)
  | Pair of t * t
  | List of t list
  | Handle of int  (** reference to another object instance *)

val equal : t -> t -> bool

(** [words v] is the size of [v] in 32-bit words when marshalled across a
    protection domain; drives the per-word argument-mapping cost of
    cross-domain calls. *)
val words : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Convenience accessors; raise [Invalid_argument] on the wrong head. *)
val to_int : t -> int

val to_str : t -> string
val to_bool : t -> bool
val to_blob : t -> bytes
val to_handle : t -> int
val to_list : t -> t list
