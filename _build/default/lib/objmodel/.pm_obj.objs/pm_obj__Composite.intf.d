lib/objmodel/composite.mli: Instance Registry
