lib/objmodel/iface.ml: Call_ctx Hashtbl List Oerror Printf String Value Vtype
