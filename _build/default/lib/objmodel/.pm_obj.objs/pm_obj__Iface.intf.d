lib/objmodel/iface.mli: Call_ctx Oerror Value Vtype
