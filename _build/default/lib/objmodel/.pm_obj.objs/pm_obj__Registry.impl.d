lib/objmodel/registry.ml: Hashtbl
