lib/objmodel/registry.mli:
