lib/objmodel/instance.mli: Iface Oerror Registry
