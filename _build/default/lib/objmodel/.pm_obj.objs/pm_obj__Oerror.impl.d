lib/objmodel/oerror.ml: Format Printexc Printf
