lib/objmodel/value.ml: Bytes Format List String
