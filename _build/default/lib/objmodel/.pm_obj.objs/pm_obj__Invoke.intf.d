lib/objmodel/invoke.mli: Call_ctx Instance Oerror Value
