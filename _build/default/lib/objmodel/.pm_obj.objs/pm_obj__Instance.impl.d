lib/objmodel/instance.ml: Iface List Oerror Printf Registry String
