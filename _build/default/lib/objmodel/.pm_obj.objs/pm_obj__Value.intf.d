lib/objmodel/value.mli: Format
