lib/objmodel/oerror.mli: Format
