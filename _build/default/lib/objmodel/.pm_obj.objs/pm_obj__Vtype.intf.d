lib/objmodel/vtype.mli: Format Value
