lib/objmodel/inline.ml: Call_ctx Iface Instance Oerror Pm_machine Printf Value Vtype
