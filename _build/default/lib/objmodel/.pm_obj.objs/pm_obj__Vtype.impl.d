lib/objmodel/vtype.ml: Format List Value
