lib/objmodel/composite.ml: Hashtbl Iface Instance Invoke List Oerror Printf String
