lib/objmodel/call_ctx.ml: Pm_machine
