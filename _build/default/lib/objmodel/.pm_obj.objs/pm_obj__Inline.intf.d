lib/objmodel/inline.mli: Call_ctx Instance Oerror Value
