lib/objmodel/invoke.ml: Call_ctx Iface Instance Oerror Pm_machine Printf Vtype
