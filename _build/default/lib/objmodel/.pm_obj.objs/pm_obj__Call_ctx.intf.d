lib/objmodel/call_ctx.mli: Pm_machine
