(** Object instances.

    An object is "a collection of methods and instance data" exporting one
    or more named interfaces; objects are relatively coarse grained (a
    scheduler, an IP layer, a device driver). Instances support method
    delegation for code sharing: a method missing from this instance's
    interface is searched along its delegate chain. *)

type t = {
  oid : int;  (** object handle, assigned by the {!Registry} *)
  class_name : string;
  mutable interfaces : Iface.t list;
  mutable delegate : t option;
  mutable domain : int;  (** protection domain the instance lives in *)
  mutable revoked : bool;
}

(** [create registry ~class_name ~domain interfaces] registers a fresh
    instance and returns it. *)
val create :
  t Registry.t -> class_name:string -> domain:int -> Iface.t list -> t

val handle : t -> int

(** [get_interface t name] finds an exported interface on this instance
    only (delegation applies to methods, not whole interfaces). *)
val get_interface : t -> string -> Iface.t option

val interface_names : t -> string list

(** [add_interface t i] exports a new interface; existing users are
    unaffected ("adding a measurement interface to an RPC object does not
    require recompilation of its users"). Raises [Invalid_argument] if the
    name is already exported. *)
val add_interface : t -> Iface.t -> unit

(** [set_delegate t d] installs a delegation target. Raises
    [Invalid_argument] on delegation cycles. *)
val set_delegate : t -> t option -> unit

(** [resolve_method t ~iface ~meth] finds the method, walking the delegate
    chain; returns the method and the number of delegation hops taken. *)
val resolve_method : t -> iface:string -> meth:string -> (Iface.meth * int, Oerror.t) result

(** [revoke t] marks the instance dead; subsequent invocations fail with
    [Revoked]. *)
val revoke : t -> unit
