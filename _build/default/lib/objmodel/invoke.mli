(** Method invocation engine.

    The only sanctioned way to operate on an object: "objects can be
    operated on only through the methods in the interfaces they export".
    Charges the interface-dispatch cost, one hop cost per delegation link
    followed, and validates arguments and result against the method's type
    information. *)

(** [call ctx obj ~iface ~meth args] dispatches a method. *)
val call :
  Call_ctx.t ->
  Instance.t ->
  iface:string ->
  meth:string ->
  Value.t list ->
  (Value.t, Oerror.t) result

(** [call_exn] is [call] but raises {!Oerror.Error} on failure. *)
val call_exn :
  Call_ctx.t -> Instance.t -> iface:string -> meth:string -> Value.t list -> Value.t
