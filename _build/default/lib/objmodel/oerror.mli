(** Errors produced by object invocation and binding. *)

type t =
  | No_such_interface of string
  | No_such_method of string * string  (** interface, method *)
  | Type_error of string
  | Domain_error of string  (** caller may not reach the target domain *)
  | Revoked  (** the instance has been revoked/unloaded *)
  | Fault of string  (** component-level failure *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [fail e] raises {!Error}. *)
val fail : t -> 'a
