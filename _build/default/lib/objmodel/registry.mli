(** Object handle registry.

    Maps object handles (small integers) to live payloads. One registry
    per kernel; the directory service stores handles, and binding resolves
    them here. The payload type is a parameter so this module does not
    depend on {!Instance}; in practice it is always [Instance.t]. *)

type 'a t

val create : unit -> 'a t

(** [fresh t] allocates the next handle (handles start at 1; 0 is never a
    valid handle). *)
val fresh : 'a t -> int

(** [put t handle v] associates a handle with a payload. *)
val put : 'a t -> int -> 'a -> unit

(** [get t handle] retrieves the payload. *)
val get : 'a t -> int -> 'a option

(** [remove t handle] forgets a handle. *)
val remove : 'a t -> int -> unit

val size : 'a t -> int
