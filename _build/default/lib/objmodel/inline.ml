module Clock = Pm_machine.Clock
module Cost = Pm_machine.Cost

type specialized = Value.t list -> (Value.t, Oerror.t) result

let specialize (ctx : Call_ctx.t) obj ~iface ~meth =
  (* binding time: one full dispatch worth of work *)
  Clock.advance ctx.Call_ctx.clock ctx.Call_ctx.costs.Cost.indirect_call;
  Clock.count ctx.Call_ctx.clock "inline_specialization";
  match Instance.resolve_method obj ~iface ~meth with
  | Error e -> Error e
  | Ok (m, hops) ->
    Clock.advance ctx.Call_ctx.clock (hops * ctx.Call_ctx.costs.Cost.delegation_hop);
    let call args =
      (* per call: direct procedure call + a one-cycle revocation guard *)
      Clock.advance ctx.Call_ctx.clock
        (ctx.Call_ctx.costs.Cost.call + ctx.Call_ctx.costs.Cost.cycle);
      Clock.count ctx.Call_ctx.clock "inlined_invocation";
      if obj.Instance.revoked then Error Oerror.Revoked
      else if not (Vtype.check_args m.Iface.msig args) then
        Error
          (Oerror.Type_error
             (Printf.sprintf "%s.%s expects %s" iface meth
                (Vtype.to_string_signature m.Iface.msig)))
      else begin
        match m.Iface.impl ctx args with
        | Error _ as e -> e
        | Ok ret ->
          if Vtype.check m.Iface.msig.Vtype.ret ret then Ok ret
          else
            Error
              (Oerror.Type_error
                 (Printf.sprintf "%s.%s returned an ill-typed value" iface meth))
      end
    in
    Ok call

let specialize_exn ctx obj ~iface ~meth =
  match specialize ctx obj ~iface ~meth with
  | Ok f -> f
  | Error e -> Oerror.fail e
