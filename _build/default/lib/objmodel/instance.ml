type t = {
  oid : int;
  class_name : string;
  mutable interfaces : Iface.t list;
  mutable delegate : t option;
  mutable domain : int;
  mutable revoked : bool;
}

let create registry ~class_name ~domain interfaces =
  let oid = Registry.fresh registry in
  let t = { oid; class_name; interfaces; delegate = None; domain; revoked = false } in
  Registry.put registry oid t;
  t

let handle t = t.oid

let get_interface t name =
  List.find_opt (fun i -> String.equal i.Iface.name name) t.interfaces

let interface_names t = List.map (fun i -> i.Iface.name) t.interfaces

let add_interface t i =
  if get_interface t i.Iface.name <> None then
    invalid_arg (Printf.sprintf "Instance.add_interface: %S already exported" i.Iface.name);
  t.interfaces <- t.interfaces @ [ i ]

let set_delegate t d =
  (match d with
  | Some target ->
    let rec cycles seen node =
      match node with
      | None -> false
      | Some n -> if List.memq n seen then true else cycles (n :: seen) n.delegate
    in
    if target == t || cycles [ t ] (Some target) then
      invalid_arg "Instance.set_delegate: delegation cycle"
  | None -> ());
  t.delegate <- d

let resolve_method t ~iface ~meth =
  if t.revoked then Error Oerror.Revoked
  else begin
    let rec search node hops saw_iface =
      match node with
      | None ->
        if saw_iface then Error (Oerror.No_such_method (iface, meth))
        else Error (Oerror.No_such_interface iface)
      | Some n ->
        (match get_interface n iface with
        | Some i ->
          (match Iface.find_method i meth with
          | Some m -> Ok (m, hops)
          | None -> search n.delegate (hops + 1) true)
        | None -> search n.delegate (hops + 1) saw_iface)
    in
    search (Some t) 0 false
  end

let revoke t = t.revoked <- true
