(* Tests for the certification architecture: principals, certificates,
   speaks-for delegation, the authority's escape hatch, and the kernel
   validator. *)

open Paramecium

let rng () = Prng.create ~seed:2024
let key_bits = 384 (* smallest width that fits a SHA-256 PKCS block; fast but real *)

(* a fixture: CA + one compiler delegate + one admin delegate *)
type fixture = {
  auth : Authority.t;
  compiler : Authority.delegate;
  admin : Authority.delegate;
  r : Prng.t;
}

let fixture () =
  let r = rng () in
  let auth = Authority.create r ~name:"ca" ~key_bits in
  let compiler =
    Authority.add_delegate auth r ~name:"compiler" ~policy:Policies.trusted_compiler
      ~latency:100 ()
  in
  let admin =
    Authority.add_delegate auth r ~name:"admin"
      ~policy:(Policies.administrator ~trusted_authors:[ "alice" ])
      ~latency:1000 ()
  in
  { auth; compiler; admin; r }

let meta ?(author = "alice") ?(type_safe = false) ?tags name =
  Meta.make ~author ~type_safe ?tags ~name ~size:1024 ()

let validator_of f =
  let v = Validator.create ~root:(Authority.ca f.auth) in
  List.iter (Validator.add_grant v) (Authority.grants f.auth);
  v

(* --- principals -------------------------------------------------------- *)

let test_principal_identity () =
  let r = rng () in
  let k1 = Rsa.generate r ~bits:key_bits in
  let p1 = Principal.make "alice" k1.Rsa.pub in
  let p1' = Principal.make "alice-renamed" k1.Rsa.pub in
  let k2 = Rsa.generate r ~bits:key_bits in
  let p2 = Principal.make "alice" k2.Rsa.pub in
  Alcotest.(check bool) "same key, same principal" true (Principal.equal p1 p1');
  Alcotest.(check bool) "same name, different key" false (Principal.equal p1 p2)

(* --- certificates ------------------------------------------------------- *)

let test_certificate_sign_verify () =
  let r = rng () in
  let key = Rsa.generate r ~bits:key_bits in
  let signer = Principal.make "signer" key.Rsa.pub in
  let code = "object code bytes" in
  let cert =
    Certificate.issue key ~signer ~component:"comp" ~digest:(Sha256.digest code)
      ~issued_at:5
  in
  Alcotest.(check bool) "well signed" true (Certificate.well_signed cert);
  Alcotest.(check bool) "matches code" true (Certificate.matches_code cert code);
  Alcotest.(check bool) "detects tampering" false
    (Certificate.matches_code cert (code ^ "x"));
  let forged = { cert with Certificate.component = "other" } in
  Alcotest.(check bool) "field change breaks signature" false
    (Certificate.well_signed forged)

(* --- delegation ---------------------------------------------------------- *)

let test_delegation_statements () =
  let r = rng () in
  let ca_key = Rsa.generate r ~bits:key_bits in
  let ca = Principal.make "ca" ca_key.Rsa.pub in
  let del_key = Rsa.generate r ~bits:key_bits in
  let del = Principal.make "delegate" del_key.Rsa.pub in
  let g = Delegation.grant ca_key ~grantor:ca ~delegate:del ~scope:"s" () in
  Alcotest.(check bool) "well signed" true (Delegation.well_signed g);
  Alcotest.(check bool) "never expires" true (Delegation.live g ~now:max_int);
  let g2 = Delegation.grant ca_key ~grantor:ca ~delegate:del ~scope:"s" ~expires:100 () in
  Alcotest.(check bool) "live before" true (Delegation.live g2 ~now:99);
  Alcotest.(check bool) "dead after" false (Delegation.live g2 ~now:100);
  let forged = { g with Delegation.scope = "other" } in
  Alcotest.(check bool) "scope change breaks signature" false
    (Delegation.well_signed forged)

(* --- authority / escape hatch -------------------------------------------- *)

let test_certify_first_delegate () =
  let f = fixture () in
  let outcome = Authority.certify f.auth (meta ~type_safe:true "ts") ~code:"c" ~now:1 in
  (match outcome.Authority.certificate with
  | Some cert ->
    Alcotest.(check bool) "compiler signed" true
      (Principal.equal cert.Certificate.signer f.compiler.Authority.principal)
  | None -> Alcotest.fail "expected a certificate");
  Alcotest.(check int) "only compiler consulted" 1 (List.length outcome.Authority.trail);
  Alcotest.(check int) "compiler latency" 100 outcome.Authority.elapsed

let test_certify_escape_hatch () =
  let f = fixture () in
  (* not type-safe: compiler cannot decide, falls through to admin *)
  let outcome = Authority.certify f.auth (meta "plain") ~code:"c" ~now:1 in
  (match outcome.Authority.certificate with
  | Some cert ->
    Alcotest.(check bool) "admin signed" true
      (Principal.equal cert.Certificate.signer f.admin.Authority.principal)
  | None -> Alcotest.fail "expected a certificate");
  Alcotest.(check int) "both consulted" 2 (List.length outcome.Authority.trail);
  Alcotest.(check int) "latencies accumulate" 1100 outcome.Authority.elapsed

let test_certify_all_decline () =
  let f = fixture () in
  let outcome = Authority.certify f.auth (meta ~author:"mallory" "bad") ~code:"c" ~now:1 in
  Alcotest.(check bool) "no certificate" true (outcome.Authority.certificate = None);
  (match outcome.Authority.trail with
  | [ ("compiler", Authority.Cannot_decide); ("admin", Authority.Reject _) ] -> ()
  | _ -> Alcotest.fail "unexpected trail")

let test_policies () =
  let open Authority in
  (match Policies.prover (meta "x") with
  | Cannot_decide -> ()
  | _ -> Alcotest.fail "prover needs annotations");
  (match Policies.prover (Meta.make ~proof_annotated:true ~name:"x" ~size:1 ()) with
  | Accept -> ()
  | _ -> Alcotest.fail "prover accepts annotated");
  (match Policies.test_team (meta ~tags:[ "tested" ] "x") with
  | Accept -> ()
  | _ -> Alcotest.fail "test team accepts tested");
  (match Policies.test_team (meta ~tags:[ "known-bad" ] "x") with
  | Reject _ -> ()
  | _ -> Alcotest.fail "test team rejects known-bad");
  (match Policies.graduate_student ~max_size:100 (meta "x") with
  | Cannot_decide -> ()
  | _ -> Alcotest.fail "student overwhelmed by 1KB");
  let r = rng () in
  let always = Policies.flaky r ~fail_probability:1.0 Policies.trusted_compiler in
  (match always (meta ~type_safe:true "x") with
  | Cannot_decide -> ()
  | _ -> Alcotest.fail "flaky 1.0 never decides")

(* --- validator -------------------------------------------------------------- *)

let certify_exn f m ~code ~now =
  match (Authority.certify f.auth m ~code ~now).Authority.certificate with
  | Some c -> c
  | None -> Alcotest.fail "fixture should certify"

let test_validate_accepts_chain () =
  let f = fixture () in
  let v = validator_of f in
  let code = "good code" in
  let cert = certify_exn f (meta ~type_safe:true "c") ~code ~now:1 in
  (match Validator.validate v cert ~code ~now:2 with
  | Validator.Valid { chain_length } -> Alcotest.(check int) "one hop" 1 chain_length
  | Validator.Invalid e -> Alcotest.failf "rejected: %s" (Validator.failure_to_string e))

let test_validate_rejects_tampered_code () =
  let f = fixture () in
  let v = validator_of f in
  let cert = certify_exn f (meta ~type_safe:true "c") ~code:"good code" ~now:1 in
  (match Validator.validate v cert ~code:"evil code" ~now:2 with
  | Validator.Invalid Validator.Digest_mismatch -> ()
  | _ -> Alcotest.fail "tampered code must be rejected")

let test_validate_rejects_unknown_signer () =
  let f = fixture () in
  let v = Validator.create ~root:(Authority.ca f.auth) in
  (* no grants taught to the validator *)
  let code = "code" in
  let cert = certify_exn f (meta ~type_safe:true "c") ~code ~now:1 in
  (match Validator.validate v cert ~code ~now:2 with
  | Validator.Invalid (Validator.Untrusted_signer _) -> ()
  | _ -> Alcotest.fail "signer without chain must be rejected")

let test_validate_rejects_revoked () =
  let f = fixture () in
  let v = validator_of f in
  let code = "code" in
  let cert = certify_exn f (meta ~type_safe:true "c") ~code ~now:1 in
  Validator.revoke v (Principal.id f.compiler.Authority.principal);
  (match Validator.validate v cert ~code ~now:2 with
  | Validator.Invalid (Validator.Revoked_principal _) -> ()
  | _ -> Alcotest.fail "revoked signer must be rejected")

let test_validate_rejects_expired_grant () =
  let r = rng () in
  let auth = Authority.create r ~name:"ca" ~key_bits in
  let d =
    Authority.add_delegate auth r ~name:"temp" ~policy:(fun _ -> Authority.Accept)
      ~latency:1 ~expires:50 ()
  in
  ignore d;
  let v = Validator.create ~root:(Authority.ca auth) in
  List.iter (Validator.add_grant v) (Authority.grants auth);
  let code = "code" in
  let cert =
    match (Authority.certify auth (meta "c") ~code ~now:10).Authority.certificate with
    | Some c -> c
    | None -> Alcotest.fail "should certify"
  in
  (match Validator.validate v cert ~code ~now:20 with
  | Validator.Valid _ -> ()
  | Validator.Invalid e -> Alcotest.failf "live grant rejected: %s" (Validator.failure_to_string e));
  (match Validator.validate v cert ~code ~now:60 with
  | Validator.Invalid (Validator.Expired_grant _) -> ()
  | _ -> Alcotest.fail "expired grant must be rejected")

let test_validate_multi_hop_chain () =
  (* CA -> dept; dept re-delegates -> lab; lab signs *)
  let r = rng () in
  let auth = Authority.create r ~name:"ca" ~key_bits in
  let dept_key = Rsa.generate r ~bits:key_bits in
  let dept = Principal.make "dept" dept_key.Rsa.pub in
  let lab_key = Rsa.generate r ~bits:key_bits in
  let lab = Principal.make "lab" lab_key.Rsa.pub in
  (* CA grants to dept via the normal delegate path *)
  let dept_delegate =
    Authority.add_delegate auth r ~name:"dept-unused" ~policy:(fun _ -> Authority.Cannot_decide)
      ~latency:1 ()
  in
  ignore dept_delegate;
  let v = Validator.create ~root:(Authority.ca auth) in
  List.iter (Validator.add_grant v) (Authority.grants auth);
  (* hand-build the chain CA -> dept -> lab; we need the CA key, so reuse
     Authority.certify_direct-style construction via a fresh authority
     whose ca key we control *)
  let ca_key = Rsa.generate r ~bits:key_bits in
  let ca = Principal.make "root2" ca_key.Rsa.pub in
  let v2 = Validator.create ~root:ca in
  Validator.add_grant v2
    (Delegation.grant ca_key ~grantor:ca ~delegate:dept ~scope:"kernel-certification" ());
  Validator.add_grant v2
    (Delegation.grant dept_key ~grantor:dept ~delegate:lab ~scope:"kernel-certification" ());
  let code = "multi hop" in
  let m = meta "mh" in
  let cert = Authority.certify_direct ~signer_key:lab_key ~signer:lab ~meta:m ~code ~now:1 in
  (match Validator.validate v2 cert ~code ~now:2 with
  | Validator.Valid { chain_length } -> Alcotest.(check int) "two hops" 2 chain_length
  | Validator.Invalid e -> Alcotest.failf "rejected: %s" (Validator.failure_to_string e));
  (* revoking the middle principal severs the chain *)
  Validator.revoke v2 (Principal.id dept);
  (match Validator.validate v2 cert ~code ~now:2 with
  | Validator.Invalid _ -> ()
  | _ -> Alcotest.fail "revoked intermediary must sever the chain")

let test_validate_self_signed_rejected () =
  (* mallory signs her own cert with her own key: no chain to the root *)
  let f = fixture () in
  let v = validator_of f in
  (* a different seed: reusing the fixture seed would regenerate the CA's
     own key and make mallory the root *)
  let r = Prng.create ~seed:666 in
  let mallory_key = Rsa.generate r ~bits:key_bits in
  let mallory = Principal.make "mallory" mallory_key.Rsa.pub in
  let code = "evil" in
  let cert =
    Authority.certify_direct ~signer_key:mallory_key ~signer:mallory
      ~meta:(meta ~author:"mallory" "evil") ~code ~now:1
  in
  Alcotest.(check bool) "signature itself is fine" true (Certificate.well_signed cert);
  (match Validator.validate v cert ~code ~now:2 with
  | Validator.Invalid (Validator.Untrusted_signer _) -> ()
  | _ -> Alcotest.fail "self-signed cert must be rejected")

(* --- properties --------------------------------------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:30 ~name gen f)

let shared_fixture = lazy (fixture ())

let props =
  [
    prop "no tampered component ever validates"
      QCheck2.Gen.(pair (string_size (int_range 1 64)) (int_bound 63))
      (fun (code, at) ->
        let f = Lazy.force shared_fixture in
        let v = validator_of f in
        let cert = certify_exn f (meta ~type_safe:true "p") ~code ~now:1 in
        let at = at mod String.length code in
        let tampered =
          String.mapi
            (fun i c -> if i = at then Char.chr (Char.code c lxor 0x80) else c)
            code
        in
        match Validator.validate v cert ~code:tampered ~now:2 with
        | Validator.Invalid Validator.Digest_mismatch -> true
        | _ -> false);
    prop "certification is deterministic in the metadata"
      QCheck2.Gen.(pair bool (string_size (int_range 1 16)))
      (fun (ts, name) ->
        let f = Lazy.force shared_fixture in
        let m = meta ~type_safe:ts name in
        let o1 = Authority.certify f.auth m ~code:"c" ~now:1 in
        let o2 = Authority.certify f.auth m ~code:"c" ~now:1 in
        o1.Authority.trail = o2.Authority.trail);
  ]

let () =
  Alcotest.run "secure"
    [
      ("principal", [ Alcotest.test_case "identity" `Quick test_principal_identity ]);
      ( "certificate",
        [ Alcotest.test_case "sign/verify/tamper" `Quick test_certificate_sign_verify ] );
      ( "delegation",
        [ Alcotest.test_case "statements" `Quick test_delegation_statements ] );
      ( "authority",
        [
          Alcotest.test_case "first delegate wins" `Quick test_certify_first_delegate;
          Alcotest.test_case "escape hatch" `Quick test_certify_escape_hatch;
          Alcotest.test_case "all decline" `Quick test_certify_all_decline;
          Alcotest.test_case "policy zoo" `Quick test_policies;
        ] );
      ( "validator",
        [
          Alcotest.test_case "accepts valid chain" `Quick test_validate_accepts_chain;
          Alcotest.test_case "rejects tampered code" `Quick
            test_validate_rejects_tampered_code;
          Alcotest.test_case "rejects unknown signer" `Quick
            test_validate_rejects_unknown_signer;
          Alcotest.test_case "rejects revoked" `Quick test_validate_rejects_revoked;
          Alcotest.test_case "rejects expired grant" `Quick
            test_validate_rejects_expired_grant;
          Alcotest.test_case "multi-hop chain" `Quick test_validate_multi_hop_chain;
          Alcotest.test_case "self-signed rejected" `Quick
            test_validate_self_signed_rejected;
        ] );
      ("properties", props);
    ]
