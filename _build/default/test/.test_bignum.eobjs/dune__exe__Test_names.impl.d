test/test_names.ml: Alcotest Array Call_ctx Clock Cost Format Hashtbl List Namespace Option Paramecium Path QCheck2 QCheck_alcotest String View
