test/test_threads.ml: Alcotest Buffer Char Clock Cost Effect List Paramecium Printf QCheck2 QCheck_alcotest Queue Scheduler Sync
