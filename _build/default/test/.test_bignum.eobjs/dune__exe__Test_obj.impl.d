test/test_obj.ml: Alcotest Bytes Call_ctx Clock Composite Cost Iface Instance Invoke List Oerror Option Paramecium QCheck2 QCheck_alcotest Registry String Value Vtype
