test/test_nucleus.mli:
