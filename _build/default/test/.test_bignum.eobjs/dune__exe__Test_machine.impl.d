test/test_machine.ml: Alcotest Char Clock Console Cost Format List Machine Mmu Nic Paramecium Physmem String Timer_dev
