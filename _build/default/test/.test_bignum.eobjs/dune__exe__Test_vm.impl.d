test/test_vm.ml: Alcotest Array Bytes Call_ctx Char Clock Cost Filterc Invoke Kernel List Nic Oerror Paramecium Printf QCheck2 QCheck_alcotest Sfi_rewrite Stack String System Value Vm Wire
