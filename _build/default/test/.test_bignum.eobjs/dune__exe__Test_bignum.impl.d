test/test_bignum.ml: Alcotest List Nat Paramecium QCheck2 QCheck_alcotest String
