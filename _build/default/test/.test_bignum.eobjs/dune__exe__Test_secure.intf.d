test/test_secure.mli:
