test/test_crypto.ml: Alcotest Array Bytes Char Lazy List Nat Paramecium Prime Printf Prng QCheck2 QCheck_alcotest Rsa Sha256 String
