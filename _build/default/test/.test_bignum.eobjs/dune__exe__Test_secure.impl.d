test/test_secure.ml: Alcotest Authority Certificate Char Delegation Lazy List Meta Paramecium Policies Principal Prng QCheck2 QCheck_alcotest Rsa Sha256 String Validator
