test/test_names.mli:
