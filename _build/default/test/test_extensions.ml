(* Tests for the extension subsystems: the disk device, the demand pager
   (virtual memory outside the nucleus), run-time inlining, and the
   two-node cluster. *)

open Paramecium

let sys_fixture () = System.create ~key_bits:384 ()

(* --- disk ---------------------------------------------------------------- *)

let disk_fixture () =
  let m = Machine.create ~costs:Cost.unit_costs ~frames:16 ~page_size:256 () in
  let d = Disk.create m ~irq_line:3 ~blocks:32 in
  (m, d)

let test_disk_sync_round_trip () =
  let m, d = disk_fixture () in
  let phys = Machine.phys m in
  let f1 = Physmem.alloc phys in
  let f2 = Physmem.alloc phys in
  Physmem.blit_string phys "persistent data" (f1 * 256);
  Disk.write_sync d ~block:5 ~phys_addr:(f1 * 256);
  Disk.read_sync d ~block:5 ~phys_addr:(f2 * 256);
  Alcotest.(check string) "round trip" "persistent data"
    (Physmem.read_string phys (f2 * 256) 15);
  Alcotest.(check int) "reads" 1 (Disk.reads d);
  Alcotest.(check int) "writes" 1 (Disk.writes d);
  (* unwritten blocks read as zeroes *)
  Disk.read_sync d ~block:9 ~phys_addr:(f2 * 256);
  Alcotest.(check int) "zero fill" 0 (Physmem.read8 phys (f2 * 256));
  Alcotest.check_raises "bad block" (Invalid_argument "Disk: block 32 out of range")
    (fun () -> Disk.read_sync d ~block:32 ~phys_addr:(f1 * 256))

let test_disk_sync_charges () =
  let m, d = disk_fixture () in
  let f = Physmem.alloc (Machine.phys m) in
  let before = Clock.now (Machine.clock m) in
  Disk.write_sync d ~block:0 ~phys_addr:(f * 256);
  Alcotest.(check int) "op cost" Disk.op_cycles (Clock.now (Machine.clock m) - before)

let test_disk_async () =
  let m, d = disk_fixture () in
  let phys = Machine.phys m in
  let f = Physmem.alloc phys in
  Physmem.blit_string phys "dma!" (f * 256);
  let irqs = ref 0 in
  Machine.set_irq_handler m 3 (Some (fun () -> incr irqs));
  let base = Disk.io_base d in
  Machine.io_write m base 7 (* BLOCK *);
  Machine.io_write m (base + 4) (f * 256) (* ADDR *);
  Machine.io_write m (base + 8) 2 (* CMD write *);
  Alcotest.(check int) "busy" 1 (Machine.io_read m (base + 12) land 1);
  for _ = 1 to 5 do
    Machine.tick m
  done;
  Alcotest.(check int) "irq on completion" 1 !irqs;
  Alcotest.(check int) "done bit" 2 (Machine.io_read m (base + 12) land 2);
  Machine.io_write m (base + 12) 2 (* ack *);
  Alcotest.(check int) "done cleared" 0 (Machine.io_read m (base + 12) land 2);
  (* read it back asynchronously into another frame *)
  let f2 = Physmem.alloc phys in
  Machine.io_write m base 7;
  Machine.io_write m (base + 4) (f2 * 256);
  Machine.io_write m (base + 8) 1 (* CMD read *);
  for _ = 1 to 5 do
    Machine.tick m
  done;
  Alcotest.(check string) "async round trip" "dma!" (Physmem.read_string phys (f2 * 256) 4);
  Alcotest.(check int) "capacity register" 32 (Machine.io_read m (base + 16))

let test_disk_async_errors () =
  let m, d = disk_fixture () in
  let base = Disk.io_base d in
  Machine.io_write m base 99 (* bad block *);
  Machine.io_write m (base + 8) 1;
  Alcotest.(check int) "error bit" 4 (Machine.io_read m (base + 12) land 4);
  Machine.io_write m (base + 12) 4;
  Machine.io_write m base 1;
  Machine.io_write m (base + 8) 7 (* bad command *);
  Alcotest.(check int) "bad cmd error" 4 (Machine.io_read m (base + 12) land 4)

(* --- pager ----------------------------------------------------------------- *)

let pager_fixture ~budget ~pages () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let pager =
    Pager.create (Kernel.api k) kdom ~disk:(Kernel.disk k) ~resident_budget:budget
      ~backing_pages:pages ~first_block:0
  in
  (k, kdom, pager)

let test_pager_demand_paging () =
  let k, kdom, pager = pager_fixture ~budget:4 ~pages:16 () in
  let m = Kernel.machine k in
  let ps = Machine.page_size m in
  let base = Pager.base pager in
  for p = 0 to 15 do
    Machine.write8 m kdom.Domain.id (base + (p * ps) + 5) (100 + p)
  done;
  Alcotest.(check int) "resident capped at budget" 4 (Pager.resident pager);
  Alcotest.(check bool) "evictions happened" true (Pager.pageouts pager >= 12);
  (* everything reads back correctly through page-ins *)
  for p = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "page %d" p)
      (100 + p)
      (Machine.read8 m kdom.Domain.id (base + (p * ps) + 5))
  done

let test_pager_dirty_tracking () =
  let k, kdom, pager = pager_fixture ~budget:4 ~pages:8 () in
  let m = Kernel.machine k in
  let ps = Machine.page_size m in
  let base = Pager.base pager in
  (* read-only touches never need write-back *)
  for p = 0 to 7 do
    ignore (Machine.read8 m kdom.Domain.id (base + (p * ps)))
  done;
  Alcotest.(check int) "clean pages never written back" 0 (Pager.pageouts pager);
  (* dirty one page; cycling the rest through must write back exactly it *)
  Machine.write8 m kdom.Domain.id base 1;
  for p = 1 to 7 do
    ignore (Machine.read8 m kdom.Domain.id (base + (p * ps)))
  done;
  Alcotest.(check int) "exactly the dirty page written" 1 (Pager.pageouts pager)

let test_pager_hot_set_no_thrash () =
  let k, kdom, pager = pager_fixture ~budget:8 ~pages:32 () in
  let m = Kernel.machine k in
  let ps = Machine.page_size m in
  let base = Pager.base pager in
  (* stream everything once, then hammer a hot set within the budget *)
  for p = 0 to 31 do
    ignore (Machine.read8 m kdom.Domain.id (base + (p * ps)))
  done;
  let faults_before = Pager.faults pager in
  for _ = 1 to 100 do
    for p = 0 to 5 do
      ignore (Machine.read8 m kdom.Domain.id (base + (p * ps)))
    done
  done;
  Alcotest.(check bool) "hot set stabilizes" true (Pager.faults pager - faults_before <= 6)

let test_pager_object_interface () =
  let k, kdom, pager = pager_fixture ~budget:2 ~pages:4 () in
  let m = Kernel.machine k in
  let ctx = Kernel.ctx k kdom in
  let inst = Pager.instance pager in
  Machine.write8 m kdom.Domain.id (Pager.base pager) 1;
  (match Invoke.call_exn ctx inst ~iface:"pager" ~meth:"stats" [] with
  | Value.List [ Value.Int faults; _; _; Value.Int resident ] ->
    Alcotest.(check bool) "faults counted" true (faults >= 1);
    Alcotest.(check int) "resident" 1 resident
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (match Invoke.call_exn ctx inst ~iface:"pager" ~meth:"flush" [] with
  | Value.Int 1 -> ()
  | v -> Alcotest.failf "flush: %s" (Value.to_string v));
  (* after flush the page is clean: a second flush writes nothing *)
  (match Invoke.call_exn ctx inst ~iface:"pager" ~meth:"flush" [] with
  | Value.Int 0 -> ()
  | v -> Alcotest.failf "second flush: %s" (Value.to_string v))

let test_pager_bounds () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  (match
     Pager.create (Kernel.api k) kdom ~disk:(Kernel.disk k) ~resident_budget:0
       ~backing_pages:4 ~first_block:0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero budget rejected");
  (match
     Pager.create (Kernel.api k) kdom ~disk:(Kernel.disk k) ~resident_budget:2
       ~backing_pages:600 ~first_block:0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized backing store rejected")

(* --- inlining ----------------------------------------------------------------- *)

let inline_fixture () =
  let clock = Clock.create () in
  (* default costs: a direct call (8) + guard (1) is cheaper than an
     interface dispatch (14); under unit costs the relation inverts *)
  let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
  let registry = Registry.create () in
  let state = ref 0 in
  let iface =
    Iface.make ~name:"ctr"
      [
        Iface.meth ~name:"incr" ~args:[ Vtype.Tint ] ~ret:Vtype.Tint
          (fun _ctx -> function
            | [ Value.Int by ] ->
              state := !state + by;
              Ok (Value.Int !state)
            | _ -> Error (Oerror.Type_error "incr(int)"));
      ]
  in
  let obj = Instance.create registry ~class_name:"t" ~domain:0 [ iface ] in
  (clock, ctx, obj)

let test_inline_behaves_like_dispatch () =
  let _, ctx, obj = inline_fixture () in
  let fast = Inline.specialize_exn ctx obj ~iface:"ctr" ~meth:"incr" in
  (match fast [ Value.Int 5 ] with
  | Ok (Value.Int 5) -> ()
  | _ -> Alcotest.fail "inlined call wrong");
  (* shared state with the dispatched path *)
  (match Invoke.call_exn ctx obj ~iface:"ctr" ~meth:"incr" [ Value.Int 1 ] with
  | Value.Int 6 -> ()
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  (* type errors still caught per call *)
  (match fast [ Value.Str "x" ] with
  | Error (Oerror.Type_error _) -> ()
  | _ -> Alcotest.fail "inlined call must type-check args")

let test_inline_cheaper_than_dispatch () =
  let clock, ctx, obj = inline_fixture () in
  let fast = Inline.specialize_exn ctx obj ~iface:"ctr" ~meth:"incr" in
  let cost f =
    let before = Clock.now clock in
    for _ = 1 to 50 do
      ignore (f ())
    done;
    Clock.now clock - before
  in
  let dispatched =
    cost (fun () -> Invoke.call ctx obj ~iface:"ctr" ~meth:"incr" [ Value.Int 1 ])
  in
  let inlined = cost (fun () -> fast [ Value.Int 1 ]) in
  Alcotest.(check bool)
    (Printf.sprintf "inlined (%d) < dispatched (%d)" inlined dispatched)
    true (inlined < dispatched)

let test_inline_honors_revocation () =
  let _, ctx, obj = inline_fixture () in
  let fast = Inline.specialize_exn ctx obj ~iface:"ctr" ~meth:"incr" in
  Instance.revoke obj;
  (match fast [ Value.Int 1 ] with
  | Error Oerror.Revoked -> ()
  | _ -> Alcotest.fail "inlined call must honor revocation")

let test_inline_missing_method () =
  let _, ctx, obj = inline_fixture () in
  (match Inline.specialize ctx obj ~iface:"ctr" ~meth:"nope" with
  | Error (Oerror.No_such_method _) -> ()
  | _ -> Alcotest.fail "specializing a missing method must fail")

(* --- cluster --------------------------------------------------------------------- *)

let test_cluster_frame_delivery () =
  let cl = Cluster.create () in
  let ka = System.kernel (Cluster.node_a cl) in
  let kb = System.kernel (Cluster.node_b cl) in
  let netb = Cluster.net_b cl in
  let ctx_a = Kernel.ctx ka (Kernel.kernel_domain ka) in
  let ctx_b = Kernel.ctx kb (Kernel.kernel_domain kb) in
  ignore
    (Invoke.call_exn ctx_b netb.System.stack ~iface:"stack" ~meth:"bind_port"
       [ Value.Int 9 ]);
  ignore
    (Invoke.call_exn ctx_a (Cluster.net_a cl).System.stack ~iface:"stack" ~meth:"send"
       [ Value.Int Cluster.addr_b; Value.Int 8; Value.Int 9;
         Value.Blob (Bytes.of_string "hi b") ]);
  Cluster.step cl ~ticks:5 ();
  (match
     Invoke.call_exn ctx_b netb.System.stack ~iface:"stack" ~meth:"recv" [ Value.Int 9 ]
   with
  | Value.List [ Value.Pair (Value.Pair (Value.Int src, Value.Int 8), Value.Blob b) ]
    ->
    Alcotest.(check int) "source address" Cluster.addr_a src;
    Alcotest.(check string) "payload" "hi b" (Bytes.to_string b)
  | v -> Alcotest.failf "unexpected %s" (Value.to_string v));
  Alcotest.(check int) "one frame ferried" 1 (Cluster.frames_delivered cl)

let test_cluster_shared_authority () =
  let cl = Cluster.create () in
  let a = Cluster.node_a cl and b = Cluster.node_b cl in
  (* a certificate created against A's authority admits the component on B *)
  let image =
    Images.image ~name:"roaming" ~size:1_024 ~type_safe:true (fun api dom ->
        Instance.create api.Api.registry ~class_name:"roaming" ~domain:dom.Domain.id [])
  in
  let image, _ = Images.certify (System.authority a) ~now:0 image in
  let kb = System.kernel b in
  Loader.publish (Kernel.loader kb) image;
  (match
     Loader.load (Kernel.loader kb) ~name:"roaming" ~into:(Kernel.kernel_domain kb)
       ~at:(Path.of_string "/svc/roaming") ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cross-node load failed: %s" (Loader.load_error_to_string e));
  (* but a foreign authority's cert does not *)
  let other = System.create ~seed:31337 ~key_bits:384 () in
  let image2 =
    Images.image ~name:"alien" ~size:1_024 ~type_safe:true (fun api dom ->
        Instance.create api.Api.registry ~class_name:"alien" ~domain:dom.Domain.id [])
  in
  let image2, _ = Images.certify (System.authority other) ~now:0 image2 in
  Loader.publish (Kernel.loader kb) image2;
  (match
     Loader.load (Kernel.loader kb) ~name:"alien" ~into:(Kernel.kernel_domain kb)
       ~at:(Path.of_string "/svc/alien") ()
   with
  | Error (Loader.Validation_failed (Validator.Untrusted_signer _)) -> ()
  | _ -> Alcotest.fail "foreign cert must be refused")

let test_cluster_nodes_isolated () =
  let cl = Cluster.create () in
  let ka = System.kernel (Cluster.node_a cl) in
  let kb = System.kernel (Cluster.node_b cl) in
  (* a name registered on A does not exist on B *)
  let obj =
    Instance.create (Kernel.api ka).Api.registry ~class_name:"only-a"
      ~domain:(Kernel.kernel_domain ka).Domain.id []
  in
  Kernel.register_at ka "/svc/only-a" obj;
  Alcotest.(check bool) "A has it" true
    (Namespace.exists (Directory.namespace (Kernel.directory ka)) (Path.of_string "/svc/only-a"));
  Alcotest.(check bool) "B does not" false
    (Namespace.exists (Directory.namespace (Kernel.directory kb)) (Path.of_string "/svc/only-a"))


(* --- simplefs -------------------------------------------------------------------- *)

let fs_fixture () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let fs = Simplefs.format (Kernel.api k) ~disk:(Kernel.disk k) in
  (k, kdom, Kernel.ctx k kdom, fs)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs error: %s" (Simplefs.error_to_string e)

let test_fs_files_round_trip () =
  let _, _, ctx, fs = fs_fixture () in
  ok_or_fail (Simplefs.create fs ctx "/hello.txt");
  let n = ok_or_fail (Simplefs.write fs ctx "/hello.txt" ~offset:0 (Bytes.of_string "hello fs")) in
  Alcotest.(check int) "bytes written" 8 n;
  let b = ok_or_fail (Simplefs.read fs ctx "/hello.txt" ~offset:0 ~len:100) in
  Alcotest.(check string) "read back (clamped to size)" "hello fs" (Bytes.to_string b);
  let b = ok_or_fail (Simplefs.read fs ctx "/hello.txt" ~offset:6 ~len:2) in
  Alcotest.(check string) "offset read" "fs" (Bytes.to_string b);
  let is_dir, size = ok_or_fail (Simplefs.stat fs ctx "/hello.txt") in
  Alcotest.(check bool) "not a dir" false is_dir;
  Alcotest.(check int) "size" 8 size

let test_fs_directories () =
  let _, _, ctx, fs = fs_fixture () in
  ok_or_fail (Simplefs.mkdir fs ctx "/etc");
  ok_or_fail (Simplefs.mkdir fs ctx "/etc/conf.d");
  ok_or_fail (Simplefs.create fs ctx "/etc/passwd");
  ok_or_fail (Simplefs.create fs ctx "/etc/conf.d/net");
  Alcotest.(check (list string)) "root listing" [ "etc" ] (ok_or_fail (Simplefs.list fs ctx "/"));
  Alcotest.(check (list string)) "etc listing" [ "conf.d"; "passwd" ]
    (ok_or_fail (Simplefs.list fs ctx "/etc"));
  let is_dir, _ = ok_or_fail (Simplefs.stat fs ctx "/etc/conf.d") in
  Alcotest.(check bool) "dir" true is_dir

let test_fs_errors () =
  let _, _, ctx, fs = fs_fixture () in
  ok_or_fail (Simplefs.mkdir fs ctx "/d");
  ok_or_fail (Simplefs.create fs ctx "/d/f");
  (match Simplefs.create fs ctx "/d/f" with
  | Error (Simplefs.Exists _) -> ()
  | _ -> Alcotest.fail "duplicate create");
  (match Simplefs.read fs ctx "/nope" ~offset:0 ~len:1 with
  | Error (Simplefs.Not_found _) -> ()
  | _ -> Alcotest.fail "missing file");
  (match Simplefs.write fs ctx "/d" ~offset:0 (Bytes.of_string "x") with
  | Error (Simplefs.Is_a_directory _) -> ()
  | _ -> Alcotest.fail "write to dir");
  (match Simplefs.list fs ctx "/d/f" with
  | Error (Simplefs.Not_a_directory _) -> ()
  | _ -> Alcotest.fail "list a file");
  (match Simplefs.remove fs ctx "/d" with
  | Error (Simplefs.Directory_not_empty _) -> ()
  | _ -> Alcotest.fail "remove non-empty dir");
  (match Simplefs.create fs ctx "relative" with
  | Error (Simplefs.Bad_path _) -> ()
  | _ -> Alcotest.fail "relative path");
  (match Simplefs.write fs ctx "/d/f" ~offset:(13 * 4096) (Bytes.of_string "x") with
  | Error Simplefs.File_too_large -> ()
  | _ -> Alcotest.fail "file too large")

let test_fs_remove_frees_space () =
  let _, _, ctx, fs = fs_fixture () in
  (* force the root directory's entry block to exist first: that block
     legitimately stays allocated after the file is removed *)
  ok_or_fail (Simplefs.create fs ctx "/placeholder");
  let before = Simplefs.free_blocks fs in
  ok_or_fail (Simplefs.create fs ctx "/big");
  ignore (ok_or_fail (Simplefs.write fs ctx "/big" ~offset:0 (Bytes.create 20_000)));
  Alcotest.(check bool) "blocks consumed" true (Simplefs.free_blocks fs < before);
  ok_or_fail (Simplefs.remove fs ctx "/big");
  Alcotest.(check int) "blocks released" before (Simplefs.free_blocks fs);
  (* the name can be reused *)
  ok_or_fail (Simplefs.create fs ctx "/big")

let test_fs_sparse_and_multiblock () =
  let _, _, ctx, fs = fs_fixture () in
  ok_or_fail (Simplefs.create fs ctx "/sparse");
  (* write beyond block 0 without touching it: hole reads as zeroes *)
  ignore (ok_or_fail (Simplefs.write fs ctx "/sparse" ~offset:10_000 (Bytes.of_string "end")));
  let b = ok_or_fail (Simplefs.read fs ctx "/sparse" ~offset:0 ~len:4) in
  Alcotest.(check string) "hole is zeroes" "\000\000\000\000" (Bytes.to_string b);
  let b = ok_or_fail (Simplefs.read fs ctx "/sparse" ~offset:10_000 ~len:3) in
  Alcotest.(check string) "tail data" "end" (Bytes.to_string b);
  (* a write spanning a block boundary *)
  let spanning = Bytes.init 8192 (fun i -> Char.chr (i mod 251)) in
  ignore (ok_or_fail (Simplefs.write fs ctx "/sparse" ~offset:4000 spanning));
  let back = ok_or_fail (Simplefs.read fs ctx "/sparse" ~offset:4000 ~len:8192) in
  Alcotest.(check bool) "spanning write round trips" true (Bytes.equal spanning back)

let test_fs_persistence_across_mount () =
  let sys = sys_fixture () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let ctx = Kernel.ctx k kdom in
  let fs = Simplefs.format (Kernel.api k) ~disk:(Kernel.disk k) in
  ok_or_fail (Simplefs.mkdir fs ctx "/boot");
  ok_or_fail (Simplefs.create fs ctx "/boot/kernel");
  ignore (ok_or_fail (Simplefs.write fs ctx "/boot/kernel" ~offset:0 (Bytes.of_string "vmlinuz")));
  Simplefs.sync fs;
  (* a completely fresh mount of the same disk sees everything *)
  let fs2 = Simplefs.mount (Kernel.api k) ~disk:(Kernel.disk k) in
  Alcotest.(check (list string)) "listing survives" [ "kernel" ]
    (ok_or_fail (Simplefs.list fs2 ctx "/boot"));
  let b = ok_or_fail (Simplefs.read fs2 ctx "/boot/kernel" ~offset:0 ~len:7) in
  Alcotest.(check string) "data survives" "vmlinuz" (Bytes.to_string b)

let test_fs_object_interface () =
  let k, kdom, ctx, fs = fs_fixture () in
  ignore k;
  let inst = Simplefs.instance (Kernel.api k) kdom fs in
  ignore (Invoke.call_exn ctx inst ~iface:"fs" ~meth:"create" [ Value.Str "/obj" ]);
  (match
     Invoke.call_exn ctx inst ~iface:"fs" ~meth:"write"
       [ Value.Str "/obj"; Value.Int 0; Value.Blob (Bytes.of_string "via object") ]
   with
  | Value.Int 10 | Value.Int 11 -> ()
  | v -> Alcotest.failf "write returned %s" (Value.to_string v));
  (match
     Invoke.call_exn ctx inst ~iface:"fs" ~meth:"read"
       [ Value.Str "/obj"; Value.Int 0; Value.Int 64 ]
   with
  | Value.Blob b -> Alcotest.(check string) "read" "via object" (Bytes.to_string b)
  | v -> Alcotest.failf "read returned %s" (Value.to_string v));
  (match Invoke.call ctx inst ~iface:"fs" ~meth:"read" [ Value.Str "/nope"; Value.Int 0; Value.Int 1 ] with
  | Error (Oerror.Fault _) -> ()
  | _ -> Alcotest.fail "missing file must fault")

(* model-based property: random file operations against a string-map model *)
let fs_model_prop =
  let open QCheck2 in
  let gen_op =
    Gen.(
      oneof
        [
          map (fun i -> `Create i) (int_bound 4);
          map2 (fun i s -> `Write (i, s)) (int_bound 4) (string_size (int_range 0 300));
          map (fun i -> `Remove i) (int_bound 4);
          map (fun i -> `Read i) (int_bound 4);
        ])
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:30 ~name:"random ops match a map model"
       Gen.(list_size (int_range 1 25) gen_op)
       (fun ops ->
         let _, _, ctx, fs = fs_fixture () in
         let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
         let name i = Printf.sprintf "/f%d" i in
         List.for_all
           (fun op ->
             match op with
             | `Create i ->
               let p = name i in
               (match (Simplefs.create fs ctx p, Hashtbl.mem model p) with
               | Ok (), false ->
                 Hashtbl.replace model p "";
                 true
               | Error (Simplefs.Exists _), true -> true
               | _ -> false)
             | `Write (i, s) ->
               let p = name i in
               (match (Simplefs.write fs ctx p ~offset:0 (Bytes.of_string s),
                       Hashtbl.find_opt model p)
               with
               | Ok n, Some old ->
                 let updated =
                   if String.length s >= String.length old then s
                   else s ^ String.sub old (String.length s) (String.length old - String.length s)
                 in
                 Hashtbl.replace model p updated;
                 n = String.length s
               | Error (Simplefs.Not_found _), None -> true
               | _ -> false)
             | `Remove i ->
               let p = name i in
               (match (Simplefs.remove fs ctx p, Hashtbl.mem model p) with
               | Ok (), true ->
                 Hashtbl.remove model p;
                 true
               | Error (Simplefs.Not_found _), false -> true
               | _ -> false)
             | `Read i ->
               let p = name i in
               (match (Simplefs.read fs ctx p ~offset:0 ~len:10_000,
                       Hashtbl.find_opt model p)
               with
               | Ok b, Some expected -> String.equal (Bytes.to_string b) expected
               | Error (Simplefs.Not_found _), None -> true
               | _ -> false))
           ops))

(* pager model property: random reads/writes through the pager agree
   with a flat reference array, whatever the eviction pattern *)
let pager_model_prop =
  let open QCheck2 in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:15 ~name:"paged memory agrees with a flat model"
       Gen.(list_size (int_range 1 120) (triple bool (int_bound 15) (int_bound 255)))
       (fun ops ->
         let k, kdom, pager = pager_fixture ~budget:3 ~pages:16 () in
         let m = Kernel.machine k in
         let ps = Machine.page_size m in
         let base = Pager.base pager in
         let model = Bytes.make (16 * ps) '\000' in
         List.for_all
           (fun (is_write, page, v) ->
             (* touch a fixed in-page offset derived from the value *)
             let off = (page * ps) + (v mod ps) in
             if is_write then begin
               Machine.write8 m kdom.Domain.id (base + off) v;
               Bytes.set model off (Char.chr v);
               true
             end
             else
               Machine.read8 m kdom.Domain.id (base + off)
               = Char.code (Bytes.get model off))
           ops))

let () =
  Alcotest.run "extensions"
    [
      ( "disk",
        [
          Alcotest.test_case "sync round trip" `Quick test_disk_sync_round_trip;
          Alcotest.test_case "sync cost" `Quick test_disk_sync_charges;
          Alcotest.test_case "async dma + irq" `Quick test_disk_async;
          Alcotest.test_case "async errors" `Quick test_disk_async_errors;
        ] );
      ( "pager",
        [
          Alcotest.test_case "demand paging" `Quick test_pager_demand_paging;
          Alcotest.test_case "dirty tracking" `Quick test_pager_dirty_tracking;
          Alcotest.test_case "hot set no thrash" `Quick test_pager_hot_set_no_thrash;
          Alcotest.test_case "object interface" `Quick test_pager_object_interface;
          Alcotest.test_case "bounds" `Quick test_pager_bounds;
          pager_model_prop;
        ] );
      ( "inline",
        [
          Alcotest.test_case "behaves like dispatch" `Quick
            test_inline_behaves_like_dispatch;
          Alcotest.test_case "cheaper than dispatch" `Quick
            test_inline_cheaper_than_dispatch;
          Alcotest.test_case "honors revocation" `Quick test_inline_honors_revocation;
          Alcotest.test_case "missing method" `Quick test_inline_missing_method;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "frame delivery" `Quick test_cluster_frame_delivery;
          Alcotest.test_case "shared authority" `Quick test_cluster_shared_authority;
          Alcotest.test_case "nodes isolated" `Quick test_cluster_nodes_isolated;
        ] );
      ( "simplefs",
        [
          Alcotest.test_case "files round trip" `Quick test_fs_files_round_trip;
          Alcotest.test_case "directories" `Quick test_fs_directories;
          Alcotest.test_case "errors" `Quick test_fs_errors;
          Alcotest.test_case "remove frees space" `Quick test_fs_remove_frees_space;
          Alcotest.test_case "sparse + multiblock" `Quick test_fs_sparse_and_multiblock;
          Alcotest.test_case "persistence across mount" `Quick
            test_fs_persistence_across_mount;
          Alcotest.test_case "object interface" `Quick test_fs_object_interface;
          fs_model_prop;
        ] );
    ]
