(* Tests for the simulated machine: clock, physical memory, MMU,
   memory bus with fault handling, I/O space and device models. *)

open Paramecium

let unit_machine () = Machine.create ~costs:Cost.unit_costs ~frames:32 ~page_size:256 ()

(* --- clock ----------------------------------------------------------- *)

let test_clock_basics () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now c);
  Clock.advance c 10;
  Clock.advance c 5;
  Alcotest.(check int) "accumulates" 15 (Clock.now c);
  Clock.count c "ev";
  Clock.count_n c "ev" 4;
  Alcotest.(check int) "counter" 5 (Clock.counter c "ev");
  Alcotest.(check int) "unknown counter" 0 (Clock.counter c "none");
  let (), d = Clock.measure c (fun () -> Clock.advance c 7) in
  Alcotest.(check int) "measure" 7 d;
  Clock.reset c;
  Alcotest.(check int) "reset clock" 0 (Clock.now c);
  Alcotest.(check int) "reset counters" 0 (Clock.counter c "ev")

let test_clock_counters_sorted () =
  let c = Clock.create () in
  Clock.count c "zebra";
  Clock.count c "apple";
  Alcotest.(check (list (pair string int)))
    "sorted"
    [ ("apple", 1); ("zebra", 1) ]
    (Clock.counters c)

(* --- physmem --------------------------------------------------------- *)

let test_physmem_alloc_free () =
  let pm = Physmem.create ~frames:4 ~page_size:64 in
  Alcotest.(check int) "all free" 4 (Physmem.free_frames pm);
  let f1 = Physmem.alloc pm in
  let f2 = Physmem.alloc pm in
  Alcotest.(check bool) "distinct" true (f1 <> f2);
  Alcotest.(check int) "two used" 2 (Physmem.free_frames pm);
  Physmem.release pm f1;
  Alcotest.(check int) "released" 3 (Physmem.free_frames pm);
  Alcotest.(check bool) "not allocated" false (Physmem.is_allocated pm f1);
  ignore (Physmem.alloc pm);
  ignore (Physmem.alloc pm);
  ignore (Physmem.alloc pm);
  Alcotest.check_raises "exhaustion" Out_of_memory (fun () -> ignore (Physmem.alloc pm))

let test_physmem_refcount () =
  let pm = Physmem.create ~frames:2 ~page_size:64 in
  let f = Physmem.alloc pm in
  Physmem.ref_frame pm f;
  Physmem.release pm f;
  Alcotest.(check bool) "still allocated" true (Physmem.is_allocated pm f);
  Physmem.release pm f;
  Alcotest.(check bool) "now free" false (Physmem.is_allocated pm f)

let test_physmem_rw () =
  let pm = Physmem.create ~frames:2 ~page_size:64 in
  let f = Physmem.alloc pm in
  let base = f * 64 in
  Physmem.write8 pm base 0xAB;
  Alcotest.(check int) "byte" 0xAB (Physmem.read8 pm base);
  Physmem.write32 pm (base + 4) 0x01020304;
  Alcotest.(check int) "word" 0x01020304 (Physmem.read32 pm (base + 4));
  Physmem.blit_string pm "hello" (base + 10);
  Alcotest.(check string) "string" "hello" (Physmem.read_string pm (base + 10) 5);
  let other = if f = 0 then 1 else 0 in
  Alcotest.check_raises "unallocated frame"
    (Invalid_argument "Physmem: frame not allocated") (fun () ->
      ignore (Physmem.read8 pm ((other * 64) + 1)));
  Alcotest.check_raises "out of range" (Invalid_argument "Physmem: frame out of range")
    (fun () -> ignore (Physmem.read8 pm (63 * 64 + 1)))

(* --- mmu -------------------------------------------------------------- *)

let mmu_fixture () =
  let clock = Clock.create () in
  (clock, Mmu.create clock Cost.unit_costs ~page_size:256)

let test_mmu_map_translate () =
  let _, mmu = mmu_fixture () in
  let ctx = Mmu.new_context mmu in
  Mmu.map mmu ctx ~vpage:4 ~frame:9 ~prot:Mmu.Read_write;
  (match Mmu.translate mmu ctx (4 * 256 + 17) Mmu.Read with
  | Ok phys -> Alcotest.(check int) "translate" ((9 * 256) + 17) phys
  | Error f -> Alcotest.failf "unexpected fault %s" (Format.asprintf "%a" Mmu.pp_fault f));
  (match Mmu.translate mmu ctx 0 Mmu.Read with
  | Error { Mmu.reason = Mmu.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "expected unmapped fault");
  Alcotest.(check bool) "is_mapped" true (Mmu.is_mapped mmu ctx ~vpage:4);
  Alcotest.(check (option int)) "frame_of" (Some 9) (Mmu.frame_of mmu ctx ~vpage:4)

let test_mmu_protection () =
  let _, mmu = mmu_fixture () in
  let ctx = Mmu.new_context mmu in
  Mmu.map mmu ctx ~vpage:1 ~frame:2 ~prot:Mmu.Read_only;
  (match Mmu.translate mmu ctx 256 Mmu.Write with
  | Error { Mmu.reason = Mmu.Protection; _ } -> ()
  | _ -> Alcotest.fail "expected protection fault");
  (match Mmu.translate mmu ctx 256 Mmu.Read with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "read should pass");
  Mmu.set_prot mmu ctx ~vpage:1 Mmu.No_access;
  (match Mmu.translate mmu ctx 256 Mmu.Read with
  | Error { Mmu.reason = Mmu.Protection; _ } -> ()
  | _ -> Alcotest.fail "no_access blocks reads")

let test_mmu_fault_hook () =
  let _, mmu = mmu_fixture () in
  let ctx = Mmu.new_context mmu in
  Mmu.map mmu ctx ~vpage:7 ~frame:1 ~prot:Mmu.Read_write;
  Mmu.set_fault_hook mmu ctx ~vpage:7 true;
  (match Mmu.translate mmu ctx (7 * 256) Mmu.Read with
  | Error { Mmu.reason = Mmu.Hooked; _ } -> ()
  | _ -> Alcotest.fail "expected hooked fault");
  Mmu.set_fault_hook mmu ctx ~vpage:7 false;
  (match Mmu.translate mmu ctx (7 * 256) Mmu.Read with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "unhooked page should translate")

let test_mmu_context_isolation () =
  let _, mmu = mmu_fixture () in
  let c1 = Mmu.new_context mmu in
  let c2 = Mmu.new_context mmu in
  Mmu.map mmu c1 ~vpage:1 ~frame:3 ~prot:Mmu.Read_write;
  (match Mmu.translate mmu c2 256 Mmu.Read with
  | Error { Mmu.reason = Mmu.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "contexts must be isolated");
  Alcotest.check_raises "double map" (Invalid_argument "Mmu.map: page already mapped")
    (fun () -> Mmu.map mmu c1 ~vpage:1 ~frame:4 ~prot:Mmu.Read_only);
  Alcotest.(check int) "unmap returns frame" 3 (Mmu.unmap mmu c1 ~vpage:1)

let test_mmu_switch_costs () =
  let clock, mmu = mmu_fixture () in
  let c1 = Mmu.new_context mmu in
  let before = Clock.counter clock "context_switch" in
  Mmu.switch_context mmu c1;
  Mmu.switch_context mmu c1;
  (* second is a no-op *)
  Alcotest.(check int) "one switch" (before + 1) (Clock.counter clock "context_switch")

let test_mmu_tlb_refill_after_switch () =
  let clock, mmu = mmu_fixture () in
  let c1 = Mmu.new_context mmu in
  let c2 = Mmu.new_context mmu in
  Mmu.map mmu c1 ~vpage:1 ~frame:3 ~prot:Mmu.Read_write;
  Mmu.switch_context mmu c1;
  ignore (Mmu.translate mmu c1 256 Mmu.Read);
  let fills1 = Clock.counter clock "tlb_fill" in
  ignore (Mmu.translate mmu c1 256 Mmu.Read);
  Alcotest.(check int) "TLB hit: no refill" fills1 (Clock.counter clock "tlb_fill");
  Mmu.switch_context mmu c2;
  Mmu.switch_context mmu c1;
  ignore (Mmu.translate mmu c1 256 Mmu.Read);
  Alcotest.(check int) "flush forces refill" (fills1 + 1) (Clock.counter clock "tlb_fill")

let test_mmu_delete_context () =
  let _, mmu = mmu_fixture () in
  let c1 = Mmu.new_context mmu in
  Mmu.map mmu c1 ~vpage:1 ~frame:3 ~prot:Mmu.Read_write;
  Mmu.map mmu c1 ~vpage:2 ~frame:5 ~prot:Mmu.Read_write;
  let frames = List.sort compare (Mmu.delete_context mmu c1) in
  Alcotest.(check (list int)) "frames returned" [ 3; 5 ] frames

(* --- machine bus and faults ------------------------------------------ *)

let test_machine_rw () =
  let m = unit_machine () in
  let mmu = Machine.mmu m in
  let ctx = Mmu.new_context mmu in
  let frame = Physmem.alloc (Machine.phys m) in
  Mmu.map mmu ctx ~vpage:2 ~frame ~prot:Mmu.Read_write;
  Machine.write8 m ctx 512 0x5A;
  Alcotest.(check int) "read8" 0x5A (Machine.read8 m ctx 512);
  Machine.write32 m ctx 600 0xDEADBEE;
  Alcotest.(check int) "read32" 0xDEADBEE (Machine.read32 m ctx 600);
  Machine.write_string m ctx 520 "paramecium";
  Alcotest.(check string) "string" "paramecium" (Machine.read_string m ctx 520 10)

let test_machine_straddling_word () =
  let m = unit_machine () in
  let mmu = Machine.mmu m in
  let ctx = Mmu.new_context mmu in
  let f1 = Physmem.alloc (Machine.phys m) in
  let f2 = Physmem.alloc (Machine.phys m) in
  Mmu.map mmu ctx ~vpage:0 ~frame:f1 ~prot:Mmu.Read_write;
  Mmu.map mmu ctx ~vpage:1 ~frame:f2 ~prot:Mmu.Read_write;
  (* write a 32-bit value across the page boundary at 254 *)
  Machine.write32 m ctx 254 0x11223344;
  Alcotest.(check int) "straddle round-trip" 0x11223344 (Machine.read32 m ctx 254)

let test_machine_fault_handler_resolves () =
  let m = unit_machine () in
  let mmu = Machine.mmu m in
  let ctx = Mmu.new_context mmu in
  let frame = Physmem.alloc (Machine.phys m) in
  let resolved = ref 0 in
  Machine.set_fault_handler m
    (Some
       (fun fault ->
         incr resolved;
         (* demand-map the missing page *)
         Mmu.map mmu fault.Mmu.ctx ~vpage:(fault.Mmu.vaddr / 256) ~frame
           ~prot:Mmu.Read_write;
         true));
  Machine.write8 m ctx 300 7;
  Alcotest.(check int) "one fault" 1 !resolved;
  Alcotest.(check int) "after demand paging" 7 (Machine.read8 m ctx 300)

let test_machine_fatal_fault () =
  let m = unit_machine () in
  let ctx = Mmu.new_context (Machine.mmu m) in
  (match Machine.read8 m ctx 300 with
  | exception Machine.Fatal_fault { Mmu.reason = Mmu.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "expected fatal fault")

let test_machine_traps () =
  let m = unit_machine () in
  let hits = ref [] in
  Machine.set_trap_handler m 3 (Some (fun arg -> hits := arg :: !hits; arg * 2));
  Alcotest.(check int) "trap result" 14 (Machine.raise_trap m 3 7);
  Alcotest.(check (list int)) "trap arg" [ 7 ] !hits;
  (match Machine.raise_trap m 4 0 with
  | exception Machine.Machine_check _ -> ()
  | _ -> Alcotest.fail "unhandled trap should machine-check");
  Alcotest.(check int) "trap counted" 2 (Clock.counter (Machine.clock m) "trap")

let test_machine_irqs () =
  let m = unit_machine () in
  let fired = ref 0 in
  Machine.set_irq_handler m 2 (Some (fun () -> incr fired));
  Machine.raise_irq m 2;
  Machine.raise_irq m 5;
  (* no handler: spurious *)
  Alcotest.(check int) "fired" 1 !fired;
  Alcotest.(check int) "spurious counted" 1
    (Clock.counter (Machine.clock m) "spurious_interrupt")

(* --- devices ----------------------------------------------------------- *)

let test_console () =
  let m = unit_machine () in
  let con = Console.create m in
  String.iter (fun c -> Machine.io_write m (Console.io_base con) (Char.code c)) "boot ok";
  Alcotest.(check string) "output" "boot ok" (Console.output con);
  Console.clear con;
  Alcotest.(check string) "cleared" "" (Console.output con);
  Alcotest.(check int) "status ready" 1 (Machine.io_read m (Console.io_base con + 4))

let test_timer () =
  let m = unit_machine () in
  let tm = Timer_dev.create m ~irq_line:0 in
  let ticks = ref 0 in
  Machine.set_irq_handler m 0 (Some (fun () -> incr ticks));
  let base = Timer_dev.io_base tm in
  Machine.io_write m base 3 (* period *);
  Machine.io_write m (base + 4) 3 (* enable + periodic *);
  for _ = 1 to 10 do
    Machine.tick m
  done;
  Alcotest.(check int) "fired thrice" 3 !ticks;
  Alcotest.(check int) "fires counter" 3 (Timer_dev.fires tm)

let test_timer_oneshot () =
  let m = unit_machine () in
  let tm = Timer_dev.create m ~irq_line:0 in
  let ticks = ref 0 in
  Machine.set_irq_handler m 0 (Some (fun () -> incr ticks));
  let base = Timer_dev.io_base tm in
  Machine.io_write m base 2;
  Machine.io_write m (base + 4) 1 (* enable, not periodic *);
  for _ = 1 to 10 do
    Machine.tick m
  done;
  Alcotest.(check int) "fired once" 1 !ticks

let nic_fixture () =
  let m = unit_machine () in
  let nic = Nic.create m ~irq_line:1 in
  (m, nic)

let test_nic_rx_dma () =
  let m, nic = nic_fixture () in
  let irqs = ref 0 in
  Machine.set_irq_handler m 1 (Some (fun () -> incr irqs));
  let base = Nic.io_base nic in
  let frame = Physmem.alloc (Machine.phys m) in
  Machine.io_write m (base + 8) (frame * 256) (* RX_FREE <- buffer *);
  Machine.io_write m base 5 (* rx + irq enable *);
  Nic.inject nic "packet-one";
  Machine.tick m;
  Alcotest.(check int) "irq" 1 !irqs;
  Alcotest.(check int) "status rx" 1 (Machine.io_read m (base + 4) land 1);
  let addr = Machine.io_read m (base + 12) in
  let len = Machine.io_read m (base + 16) in
  Alcotest.(check int) "buffer addr" (frame * 256) addr;
  Alcotest.(check string) "payload" "packet-one"
    (Physmem.read_string (Machine.phys m) addr len);
  (* ack pops it *)
  Machine.io_write m (base + 4) 1;
  Alcotest.(check int) "status clear" 0 (Machine.io_read m (base + 4) land 1)

let test_nic_rx_drop_without_buffers () =
  let m, nic = nic_fixture () in
  let base = Nic.io_base nic in
  Machine.io_write m base 1 (* rx enable, no buffers *);
  Nic.inject nic "lost";
  Machine.tick m;
  Alcotest.(check int) "dropped" 1 (Machine.io_read m (base + 32));
  Alcotest.(check int) "wire drained" 0 (Nic.pending_wire nic)

let test_nic_tx_and_loopback () =
  let m, nic = nic_fixture () in
  let base = Nic.io_base nic in
  let frame = Physmem.alloc (Machine.phys m) in
  Physmem.blit_string (Machine.phys m) "outgoing!" (frame * 256);
  Machine.io_write m base (2 lor 8) (* tx + loopback *);
  Machine.io_write m (base + 20) (frame * 256);
  Machine.io_write m (base + 24) 9;
  Machine.io_write m (base + 28) 1 (* TX_GO *);
  Machine.tick m;
  Alcotest.(check (list string)) "transmitted" [ "outgoing!" ] (Nic.take_transmitted nic);
  Alcotest.(check int) "looped back onto wire" 1 (Nic.pending_wire nic);
  Alcotest.check_raises "oversize inject"
    (Invalid_argument "Nic.inject: packet exceeds MTU") (fun () ->
      Nic.inject nic (String.make (Nic.mtu + 1) 'x'))

let test_io_space_checks () =
  let m = unit_machine () in
  (match Machine.io_read m 0x2000_0000 with
  | exception Machine.Machine_check _ -> ()
  | _ -> Alcotest.fail "unmapped io should machine-check");
  let con = Console.create m in
  (match Machine.io_read m (Console.io_base con + 2) with
  | exception Machine.Machine_check _ -> ()
  | _ -> Alcotest.fail "unaligned io should machine-check");
  Alcotest.(check bool) "find_device" true (Machine.find_device m "console" <> None);
  Alcotest.(check bool) "missing device" true (Machine.find_device m "gpu" = None)

let () =
  Alcotest.run "machine"
    [
      ( "clock",
        [
          Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "counters sorted" `Quick test_clock_counters_sorted;
        ] );
      ( "physmem",
        [
          Alcotest.test_case "alloc/free" `Quick test_physmem_alloc_free;
          Alcotest.test_case "refcount" `Quick test_physmem_refcount;
          Alcotest.test_case "read/write" `Quick test_physmem_rw;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "map/translate" `Quick test_mmu_map_translate;
          Alcotest.test_case "protection" `Quick test_mmu_protection;
          Alcotest.test_case "fault hook" `Quick test_mmu_fault_hook;
          Alcotest.test_case "context isolation" `Quick test_mmu_context_isolation;
          Alcotest.test_case "switch costs" `Quick test_mmu_switch_costs;
          Alcotest.test_case "tlb refill after switch" `Quick
            test_mmu_tlb_refill_after_switch;
          Alcotest.test_case "delete context" `Quick test_mmu_delete_context;
        ] );
      ( "bus",
        [
          Alcotest.test_case "read/write" `Quick test_machine_rw;
          Alcotest.test_case "straddling word" `Quick test_machine_straddling_word;
          Alcotest.test_case "fault handler resolves" `Quick
            test_machine_fault_handler_resolves;
          Alcotest.test_case "fatal fault" `Quick test_machine_fatal_fault;
          Alcotest.test_case "traps" `Quick test_machine_traps;
          Alcotest.test_case "irqs" `Quick test_machine_irqs;
        ] );
      ( "devices",
        [
          Alcotest.test_case "console" `Quick test_console;
          Alcotest.test_case "timer periodic" `Quick test_timer;
          Alcotest.test_case "timer one-shot" `Quick test_timer_oneshot;
          Alcotest.test_case "nic rx dma" `Quick test_nic_rx_dma;
          Alcotest.test_case "nic rx drop" `Quick test_nic_rx_drop_without_buffers;
          Alcotest.test_case "nic tx + loopback" `Quick test_nic_tx_and_loopback;
          Alcotest.test_case "io space checks" `Quick test_io_space_checks;
        ] );
    ]
