(* Tests for Pm_crypto: PRNG determinism, SHA-256 against FIPS vectors,
   Miller-Rabin, RSA sign/verify. *)

open Paramecium

(* --- prng ----------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.bits a 30) (Prng.bits b 30)
  done;
  let c = Prng.create ~seed:8 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.bits a 30 <> Prng.bits c 30 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_copy_split () =
  let a = Prng.create ~seed:99 in
  let b = Prng.copy a in
  Alcotest.(check int) "copy tracks" (Prng.bits a 20) (Prng.bits b 20);
  let c = Prng.split a in
  let same = ref true in
  for _ = 1 to 20 do
    if Prng.bits a 20 <> Prng.bits c 20 then same := false
  done;
  Alcotest.(check bool) "split independent" false !same

let test_prng_bounds () =
  let r = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    if not (v >= 0 && v < 17) then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.(check int) "bits 0" 0 (Prng.bits r 0);
  Alcotest.check_raises "bits 63 rejected"
    (Invalid_argument "Prng.bits: need 0 <= n <= 62") (fun () ->
      ignore (Prng.bits r 63));
  Alcotest.check_raises "int 0 rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int r 0))

let test_prng_uniformish () =
  (* crude sanity: each of 8 buckets gets 8-20% of draws *)
  let r = Prng.create ~seed:123 in
  let buckets = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let v = Prng.int r 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (c > n / 13 && c < n / 5))
    buckets

let test_prng_bytes_float () =
  let r = Prng.create ~seed:5 in
  Alcotest.(check int) "bytes length" 33 (String.length (Prng.bytes r 33));
  for _ = 1 to 100 do
    let f = Prng.float r in
    if not (f >= 0.0 && f < 1.0) then Alcotest.failf "float out of range: %f" f
  done

(* --- sha256 ---------------------------------------------------------- *)

(* FIPS 180-4 / NIST CAVS reference vectors *)
let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "sha256(%d bytes)" (String.length input))
        expect (Sha256.hex_digest input))
    sha_vectors

let test_sha256_million_a () =
  (* the classic FIPS long test *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk
  done;
  Alcotest.(check string) "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.finalize ctx))

let test_sha256_incremental_equals_oneshot () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  (* split at every boundary class: 0, mid-block, block, multi-block *)
  List.iter
    (fun cut ->
      let ctx = Sha256.init () in
      Sha256.update ctx (String.sub data 0 cut);
      Sha256.update ctx (String.sub data cut (String.length data - cut));
      Alcotest.(check string)
        (Printf.sprintf "split at %d" cut)
        (Sha256.hex_digest data)
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 63; 64; 65; 128; 999 ]

let test_sha256_finalize_once () =
  let ctx = Sha256.init () in
  Sha256.update ctx "x";
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

(* --- primes ---------------------------------------------------------- *)

let test_small_primes () =
  let rng = Prng.create ~seed:11 in
  let primes = [ 2; 3; 5; 7; 11; 101; 211; 65537; 1000000007 ] in
  let composites = [ 0; 1; 4; 9; 221 (* 13*17 *); 196617; 561 (* Carmichael *) ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%d prime" p)
        true
        (Prime.is_probable_prime rng (Nat.of_int p)))
    primes;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%d composite" c)
        false
        (Prime.is_probable_prime rng (Nat.of_int c)))
    composites

let test_random_prime_width () =
  let rng = Prng.create ~seed:17 in
  List.iter
    (fun bits ->
      let p = Prime.random_prime rng ~bits in
      Alcotest.(check int) (Printf.sprintf "%d-bit prime" bits) bits (Nat.bit_length p);
      Alcotest.(check bool) "odd" true (Nat.is_odd p))
    [ 16; 32; 64; 128 ]

let test_random_below () =
  let rng = Prng.create ~seed:23 in
  let bound = Nat.of_string "1000000000000000000000" in
  for _ = 1 to 200 do
    let v = Prime.random_below rng bound in
    if Nat.compare v bound >= 0 then Alcotest.fail "random_below out of range"
  done

(* --- rsa ------------------------------------------------------------- *)

let test_rsa_sign_verify () =
  let rng = Prng.create ~seed:42 in
  let key = Rsa.generate rng ~bits:512 in
  let digest = Sha256.digest "component code" in
  let signature = Rsa.sign key digest in
  Alcotest.(check bool) "verifies" true (Rsa.verify key.Rsa.pub ~digest ~signature);
  Alcotest.(check bool) "wrong digest fails" false
    (Rsa.verify key.Rsa.pub ~digest:(Sha256.digest "tampered") ~signature);
  let corrupted = Bytes.of_string signature in
  Bytes.set corrupted 10 (Char.chr (Char.code (Bytes.get corrupted 10) lxor 1));
  Alcotest.(check bool) "corrupt signature fails" false
    (Rsa.verify key.Rsa.pub ~digest ~signature:(Bytes.to_string corrupted));
  let other = Rsa.generate rng ~bits:512 in
  Alcotest.(check bool) "wrong key fails" false
    (Rsa.verify other.Rsa.pub ~digest ~signature)

let test_rsa_deterministic_signatures () =
  let rng = Prng.create ~seed:42 in
  let key = Rsa.generate rng ~bits:512 in
  let d = Sha256.digest "x" in
  Alcotest.(check bool) "deterministic" true
    (String.equal (Rsa.sign key d) (Rsa.sign key d))

let test_rsa_encrypt_decrypt () =
  let rng = Prng.create ~seed:7 in
  let key = Rsa.generate rng ~bits:256 in
  let m = Nat.of_string "123456789012345" in
  let c = Rsa.encrypt key.Rsa.pub m in
  Alcotest.(check bool) "ciphertext differs" false (Nat.equal c m);
  Alcotest.(check bool) "round trip" true (Nat.equal m (Rsa.decrypt key c));
  Alcotest.check_raises "message too large"
    (Invalid_argument "Rsa.encrypt: message >= modulus") (fun () ->
      ignore (Rsa.encrypt key.Rsa.pub (Nat.shift_left Nat.one 300)))

let test_rsa_fingerprint () =
  let rng = Prng.create ~seed:3 in
  let a = Rsa.generate rng ~bits:256 in
  let b = Rsa.generate rng ~bits:256 in
  Alcotest.(check int) "fingerprint length" 16
    (String.length (Rsa.fingerprint a.Rsa.pub));
  Alcotest.(check bool) "distinct keys, distinct prints" false
    (String.equal (Rsa.fingerprint a.Rsa.pub) (Rsa.fingerprint b.Rsa.pub))

let test_rsa_key_width () =
  let rng = Prng.create ~seed:15 in
  List.iter
    (fun bits ->
      let k = Rsa.generate rng ~bits in
      Alcotest.(check bool)
        (Printf.sprintf "%d-bit modulus" bits)
        true
        (k.Rsa.bits >= bits - 1 && k.Rsa.bits <= bits))
    [ 128; 256; 512 ]

(* --- properties ------------------------------------------------------ *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:50 ~name gen f)

let shared_key =
  lazy
    (let rng = Prng.create ~seed:1234 in
     Rsa.generate rng ~bits:512)

let props =
  [
    prop "sha256 avalanche: flipping a bit changes the digest"
      QCheck2.Gen.(pair (string_size (int_range 1 200)) (int_bound 10_000))
      (fun (s, flip) ->
        let i = flip mod String.length s in
        let s' =
          String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
        in
        not (String.equal (Sha256.digest s) (Sha256.digest s')));
    prop "rsa sign/verify round trip on random digests"
      QCheck2.Gen.(string_size (return 32))
      (fun digest ->
        let key = Lazy.force shared_key in
        Rsa.verify key.Rsa.pub ~digest ~signature:(Rsa.sign key digest));
    prop "rsa signatures of different digests differ"
      QCheck2.Gen.(pair (string_size (return 32)) (string_size (return 32)))
      (fun (d1, d2) ->
        let key = Lazy.force shared_key in
        String.equal d1 d2 || not (String.equal (Rsa.sign key d1) (Rsa.sign key d2)));
  ]

let () =
  Alcotest.run "crypto"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "copy/split" `Quick test_prng_copy_split;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "uniform-ish" `Quick test_prng_uniformish;
          Alcotest.test_case "bytes/float" `Quick test_prng_bytes_float;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a's" `Slow test_sha256_million_a;
          Alcotest.test_case "incremental = one-shot" `Quick
            test_sha256_incremental_equals_oneshot;
          Alcotest.test_case "finalize once" `Quick test_sha256_finalize_once;
        ] );
      ( "prime",
        [
          Alcotest.test_case "small primes/composites" `Quick test_small_primes;
          Alcotest.test_case "random prime width" `Quick test_random_prime_width;
          Alcotest.test_case "random below" `Quick test_random_below;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "sign/verify + tamper" `Quick test_rsa_sign_verify;
          Alcotest.test_case "deterministic signatures" `Quick
            test_rsa_deterministic_signatures;
          Alcotest.test_case "encrypt/decrypt" `Quick test_rsa_encrypt_decrypt;
          Alcotest.test_case "fingerprint" `Quick test_rsa_fingerprint;
          Alcotest.test_case "key width" `Quick test_rsa_key_width;
        ] );
      ("properties", props);
    ]
