(* Tests for the object architecture: values, type info, interfaces,
   instances with delegation, invocation, composition. *)

open Paramecium

let ctx_fixture () =
  let clock = Clock.create () in
  (clock, Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0)

let value = Alcotest.testable Value.pp Value.equal

(* a counter object: interface "counter" with incr/get, state pointer *)
let counter_object registry ?(domain = 0) () =
  let state = ref (Value.Int 0) in
  let incr_m _ctx = function
    | [ Value.Int by ] ->
      (match !state with
      | Value.Int v ->
        state := Value.Int (v + by);
        Ok Value.Unit
      | _ -> Error (Oerror.Fault "bad state"))
    | _ -> Error (Oerror.Type_error "incr(int)")
  in
  let get_m _ctx = function
    | [] -> Ok !state
    | _ -> Error (Oerror.Type_error "get()")
  in
  let iface =
    Iface.make ~state ~name:"counter"
      [
        Iface.meth ~name:"incr" ~args:[ Vtype.Tint ] ~ret:Vtype.Tunit incr_m;
        Iface.meth ~name:"get" ~args:[] ~ret:Vtype.Tint get_m;
      ]
  in
  Instance.create registry ~class_name:"test.counter" ~domain [ iface ]

(* --- values and types ------------------------------------------------ *)

let test_value_words () =
  Alcotest.(check int) "unit" 0 (Value.words Value.Unit);
  Alcotest.(check int) "int" 1 (Value.words (Value.Int 5));
  Alcotest.(check int) "str" 3 (Value.words (Value.Str "hello123"));
  Alcotest.(check int) "blob" 2 (Value.words (Value.Blob (Bytes.create 4)));
  Alcotest.(check int) "pair" 2
    (Value.words (Value.Pair (Value.Int 1, Value.Bool true)));
  Alcotest.(check int) "list" 3
    (Value.words (Value.List [ Value.Int 1; Value.Int 2 ]))

let test_value_accessors () =
  Alcotest.(check int) "to_int" 42 (Value.to_int (Value.Int 42));
  Alcotest.(check string) "to_str" "s" (Value.to_str (Value.Str "s"));
  (match Value.to_int (Value.Str "no") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_vtype_check () =
  let open Vtype in
  Alcotest.(check bool) "int ok" true (check Tint (Value.Int 1));
  Alcotest.(check bool) "int vs str" false (check Tint (Value.Str "x"));
  Alcotest.(check bool) "any" true (check Tany (Value.Blob Bytes.empty));
  Alcotest.(check bool) "pair" true
    (check (Tpair (Tint, Tstr)) (Value.Pair (Value.Int 1, Value.Str "a")));
  Alcotest.(check bool) "list of int" true
    (check (Tlist Tint) (Value.List [ Value.Int 1; Value.Int 2 ]));
  Alcotest.(check bool) "heterogeneous list fails" false
    (check (Tlist Tint) (Value.List [ Value.Int 1; Value.Str "x" ]));
  Alcotest.(check bool) "arity" false
    (check_args { args = [ Tint ]; ret = Tunit } [ Value.Int 1; Value.Int 2 ]);
  Alcotest.(check string) "signature rendering" "(int, str) -> blob"
    (to_string_signature { args = [ Tint; Tstr ]; ret = Tblob })

(* --- interfaces ------------------------------------------------------- *)

let test_iface_construction () =
  let m = Iface.meth ~name:"f" ~args:[] ~ret:Vtype.Tunit (fun _ _ -> Ok Value.Unit) in
  let i = Iface.make ~name:"i" [ m ] in
  Alcotest.(check (list string)) "methods" [ "f" ] (Iface.method_names i);
  Alcotest.(check bool) "find" true (Iface.find_method i "f" <> None);
  Alcotest.(check bool) "missing" true (Iface.find_method i "g" = None);
  (match Iface.make ~name:"dup" [ m; m ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate methods rejected");
  Alcotest.(check (list (pair string string)))
    "type info"
    [ ("f", "() -> unit") ]
    (Iface.type_info i)

let test_iface_override () =
  let hits = ref "" in
  let m name = Iface.meth ~name ~args:[] ~ret:Vtype.Tunit (fun _ _ -> hits := !hits ^ name; Ok Value.Unit) in
  let i = Iface.make ~name:"i" [ m "a"; m "b" ] in
  let replacement =
    Iface.meth ~name:"a" ~args:[] ~ret:Vtype.Tunit (fun _ _ ->
        hits := !hits ^ "A";
        Ok Value.Unit)
  in
  let i' = Iface.override i ~methods:[ replacement ] in
  let _, ctx = ctx_fixture () in
  ignore ((Option.get (Iface.find_method i' "a")).Iface.impl ctx []);
  ignore ((Option.get (Iface.find_method i' "b")).Iface.impl ctx []);
  Alcotest.(check string) "override took" "Ab" !hits;
  (match Iface.override i ~methods:[ Iface.meth ~name:"zz" ~args:[] ~ret:Vtype.Tunit (fun _ _ -> Ok Value.Unit) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "override of missing method rejected")

(* --- instances and invocation ---------------------------------------- *)

let test_invoke_basic () =
  let registry = Registry.create () in
  let obj = counter_object registry () in
  let _, ctx = ctx_fixture () in
  (match Invoke.call ctx obj ~iface:"counter" ~meth:"incr" [ Value.Int 5 ] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "incr failed");
  Alcotest.check value "get" (Value.Int 5)
    (Invoke.call_exn ctx obj ~iface:"counter" ~meth:"get" [])

let test_invoke_errors () =
  let registry = Registry.create () in
  let obj = counter_object registry () in
  let _, ctx = ctx_fixture () in
  (match Invoke.call ctx obj ~iface:"nope" ~meth:"x" [] with
  | Error (Oerror.No_such_interface "nope") -> ()
  | _ -> Alcotest.fail "expected No_such_interface");
  (match Invoke.call ctx obj ~iface:"counter" ~meth:"reset" [] with
  | Error (Oerror.No_such_method ("counter", "reset")) -> ()
  | _ -> Alcotest.fail "expected No_such_method");
  (match Invoke.call ctx obj ~iface:"counter" ~meth:"incr" [ Value.Str "x" ] with
  | Error (Oerror.Type_error _) -> ()
  | _ -> Alcotest.fail "expected Type_error");
  Instance.revoke obj;
  (match Invoke.call ctx obj ~iface:"counter" ~meth:"get" [] with
  | Error Oerror.Revoked -> ()
  | _ -> Alcotest.fail "expected Revoked")

let test_invoke_checks_return_type () =
  let registry = Registry.create () in
  let bad =
    Iface.make ~name:"bad"
      [ Iface.meth ~name:"lie" ~args:[] ~ret:Vtype.Tint (fun _ _ -> Ok (Value.Str "no")) ]
  in
  let obj = Instance.create registry ~class_name:"test.bad" ~domain:0 [ bad ] in
  let _, ctx = ctx_fixture () in
  (match Invoke.call ctx obj ~iface:"bad" ~meth:"lie" [] with
  | Error (Oerror.Type_error _) -> ()
  | _ -> Alcotest.fail "ill-typed return must be caught")

let test_invoke_charges () =
  let registry = Registry.create () in
  let obj = counter_object registry () in
  let clock, ctx = ctx_fixture () in
  ignore (Invoke.call ctx obj ~iface:"counter" ~meth:"get" []);
  Alcotest.(check int) "dispatch counted" 1 (Clock.counter clock "method_invocation");
  Alcotest.(check bool) "cycles charged" true (Clock.now clock > 0)

let test_delegation () =
  let registry = Registry.create () in
  let base = counter_object registry () in
  (* an empty object that delegates counter to [base] *)
  let front = Instance.create registry ~class_name:"test.front" ~domain:0 [] in
  Instance.set_delegate front (Some base);
  let clock, ctx = ctx_fixture () in
  ignore (Invoke.call_exn ctx front ~iface:"counter" ~meth:"incr" [ Value.Int 3 ]);
  Alcotest.check value "shared state" (Value.Int 3)
    (Invoke.call_exn ctx front ~iface:"counter" ~meth:"get" []);
  Alcotest.(check int) "delegation counted" 2 (Clock.counter clock "delegation");
  (* cycles rejected *)
  (match Instance.set_delegate base (Some front) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delegation cycle rejected");
  (match Instance.set_delegate front (Some front) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self delegation rejected")

let test_add_interface_evolution () =
  let registry = Registry.create () in
  let obj = counter_object registry () in
  let extra =
    Iface.make ~name:"measure"
      [ Iface.meth ~name:"zero" ~args:[] ~ret:Vtype.Tint (fun _ _ -> Ok (Value.Int 0)) ]
  in
  Instance.add_interface obj extra;
  Alcotest.(check (list string)) "both interfaces" [ "counter"; "measure" ]
    (Instance.interface_names obj);
  let _, ctx = ctx_fixture () in
  Alcotest.check value "new iface callable" (Value.Int 0)
    (Invoke.call_exn ctx obj ~iface:"measure" ~meth:"zero" []);
  (match Instance.add_interface obj extra with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate interface rejected")

let test_registry () =
  let registry = Registry.create () in
  let obj = counter_object registry () in
  Alcotest.(check bool) "registered" true
    (Registry.get registry (Instance.handle obj) <> None);
  Alcotest.(check int) "size" 1 (Registry.size registry);
  Registry.remove registry (Instance.handle obj);
  Alcotest.(check bool) "removed" true (Registry.get registry (Instance.handle obj) = None);
  Alcotest.(check bool) "handles start at 1" true (Instance.handle obj >= 1)

(* --- composition ------------------------------------------------------ *)

let test_composite_forwarding () =
  let registry = Registry.create () in
  let inner = counter_object registry () in
  let comp =
    Composite.make registry ~class_name:"test.comp" ~domain:0 ~mode:Composite.Dynamic
      ~children:[ ("c", inner) ]
      ~exports:[ { Composite.as_name = "counter"; child = "c"; iface = "counter" } ]
  in
  let _, ctx = ctx_fixture () in
  let obj = Composite.instance comp in
  ignore (Invoke.call_exn ctx obj ~iface:"counter" ~meth:"incr" [ Value.Int 9 ]);
  Alcotest.check value "forwarded" (Value.Int 9)
    (Invoke.call_exn ctx obj ~iface:"counter" ~meth:"get" [])

let test_composite_replace_child () =
  let registry = Registry.create () in
  let a = counter_object registry () in
  let b = counter_object registry () in
  let comp =
    Composite.make registry ~class_name:"test.comp" ~domain:0 ~mode:Composite.Dynamic
      ~children:[ ("c", a) ]
      ~exports:[ { Composite.as_name = "counter"; child = "c"; iface = "counter" } ]
  in
  let _, ctx = ctx_fixture () in
  let obj = Composite.instance comp in
  ignore (Invoke.call_exn ctx obj ~iface:"counter" ~meth:"incr" [ Value.Int 4 ]);
  Composite.replace_child comp "c" b;
  Alcotest.check value "fresh child state" (Value.Int 0)
    (Invoke.call_exn ctx obj ~iface:"counter" ~meth:"get" []);
  (* replacement must satisfy the forwarded interfaces *)
  let empty = Instance.create registry ~class_name:"test.empty" ~domain:0 [] in
  (match Composite.replace_child comp "c" empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "incompatible replacement rejected")

let test_composite_static_is_sealed () =
  let registry = Registry.create () in
  let a = counter_object registry () in
  let b = counter_object registry () in
  let comp =
    Composite.make registry ~class_name:"test.static" ~domain:0 ~mode:Composite.Static
      ~children:[ ("c", a) ]
      ~exports:[ { Composite.as_name = "counter"; child = "c"; iface = "counter" } ]
  in
  (match Composite.replace_child comp "c" b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "static composition must refuse replacement")

let test_composite_recursive () =
  (* compositions nest: wrap a composition in a composition *)
  let registry = Registry.create () in
  let inner = counter_object registry () in
  let mid =
    Composite.make registry ~class_name:"test.mid" ~domain:0 ~mode:Composite.Dynamic
      ~children:[ ("c", inner) ]
      ~exports:[ { Composite.as_name = "counter"; child = "c"; iface = "counter" } ]
  in
  let outer =
    Composite.make registry ~class_name:"test.outer" ~domain:0 ~mode:Composite.Dynamic
      ~children:[ ("m", Composite.instance mid) ]
      ~exports:[ { Composite.as_name = "counter"; child = "m"; iface = "counter" } ]
  in
  let _, ctx = ctx_fixture () in
  ignore
    (Invoke.call_exn ctx (Composite.instance outer) ~iface:"counter" ~meth:"incr"
       [ Value.Int 2 ]);
  Alcotest.check value "two levels deep" (Value.Int 2)
    (Invoke.call_exn ctx (Composite.instance outer) ~iface:"counter" ~meth:"get" [])

let test_composite_add_child () =
  let registry = Registry.create () in
  let a = counter_object registry () in
  let b = counter_object registry () in
  let comp =
    Composite.make registry ~class_name:"test.comp" ~domain:0 ~mode:Composite.Dynamic
      ~children:[ ("a", a) ]
      ~exports:[ { Composite.as_name = "counter"; child = "a"; iface = "counter" } ]
  in
  Composite.add_child comp "b" b;
  Alcotest.(check int) "two children" 2 (List.length (Composite.children comp));
  (match Composite.add_child comp "b" b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate child rejected");
  (match Composite.child comp "b" with
  | Some inst -> Alcotest.(check bool) "child lookup" true (inst == b)
  | None -> Alcotest.fail "child b missing");
  (match Composite.child comp "zz" with
  | None -> ()
  | Some _ -> Alcotest.fail "unexpected child zz")

let test_iface_state_pointer () =
  (* the "state pointers" part of §2's interface definition *)
  let registry = Registry.create () in
  let obj = counter_object registry () in
  let iface = Option.get (Instance.get_interface obj "counter") in
  (match iface.Iface.state with
  | Some cell ->
    let _, ctx = ctx_fixture () in
    ignore (Invoke.call_exn ctx obj ~iface:"counter" ~meth:"incr" [ Value.Int 3 ]);
    Alcotest.check value "state pointer observes method effects" (Value.Int 3) !cell
  | None -> Alcotest.fail "counter interface should export its state pointer")

(* --- properties -------------------------------------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let rec gen_value depth =
  QCheck2.Gen.(
    if depth = 0 then
      oneof
        [ return Value.Unit; map (fun b -> Value.Bool b) bool;
          map (fun n -> Value.Int n) small_int;
          map (fun s -> Value.Str s) (string_size (int_bound 12)) ]
    else
      frequency
        [
          (3, gen_value 0);
          ( 1,
            map2 (fun a b -> Value.Pair (a, b)) (gen_value (depth - 1))
              (gen_value (depth - 1)) );
          (1, map (fun xs -> Value.List xs) (list_size (int_bound 4) (gen_value (depth - 1))));
        ])

let props =
  [
    prop "value equality is reflexive" (gen_value 3) (fun v -> Value.equal v v);
    prop "words is non-negative and bounded" (gen_value 3) (fun v ->
        let w = Value.words v in
        w >= 0 && w <= 1 + (String.length (Value.to_string v) * 2));
    prop "Tany accepts everything" (gen_value 3) (fun v -> Vtype.check Vtype.Tany v);
  ]

let () =
  Alcotest.run "objmodel"
    [
      ( "values",
        [
          Alcotest.test_case "words" `Quick test_value_words;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "vtype check" `Quick test_vtype_check;
        ] );
      ( "interfaces",
        [
          Alcotest.test_case "construction" `Quick test_iface_construction;
          Alcotest.test_case "override" `Quick test_iface_override;
        ] );
      ( "invocation",
        [
          Alcotest.test_case "basic" `Quick test_invoke_basic;
          Alcotest.test_case "errors" `Quick test_invoke_errors;
          Alcotest.test_case "return type checked" `Quick test_invoke_checks_return_type;
          Alcotest.test_case "cost charged" `Quick test_invoke_charges;
          Alcotest.test_case "delegation" `Quick test_delegation;
          Alcotest.test_case "interface evolution" `Quick test_add_interface_evolution;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "composition",
        [
          Alcotest.test_case "forwarding" `Quick test_composite_forwarding;
          Alcotest.test_case "replace child" `Quick test_composite_replace_child;
          Alcotest.test_case "static sealed" `Quick test_composite_static_is_sealed;
          Alcotest.test_case "recursive" `Quick test_composite_recursive;
          Alcotest.test_case "add child" `Quick test_composite_add_child;
          Alcotest.test_case "state pointer" `Quick test_iface_state_pointer;
        ] );
      ("properties", props);
    ]
