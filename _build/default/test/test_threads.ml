(* Tests for the thread package: scheduler, priorities, synchronization,
   and the proto-thread / pop-up thread machinery. *)

open Paramecium

let sched_fixture () =
  let clock = Clock.create () in
  (clock, Scheduler.create clock Cost.unit_costs)

(* --- basic scheduling --------------------------------------------------- *)

let test_spawn_and_run () =
  let _, s = sched_fixture () in
  let log = ref [] in
  let note x = log := x :: !log in
  ignore (Scheduler.spawn s ~name:"a" (fun () -> note "a"));
  ignore (Scheduler.spawn s ~name:"b" (fun () -> note "b"));
  Alcotest.(check int) "two live" 2 (Scheduler.live s);
  let dispatches = Scheduler.run s () in
  Alcotest.(check int) "two dispatches" 2 dispatches;
  Alcotest.(check (list string)) "fifo order" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check int) "none live" 0 (Scheduler.live s)

let test_yield_interleaves () =
  let _, s = sched_fixture () in
  let log = Buffer.create 16 in
  let worker c () =
    for _ = 1 to 3 do
      Buffer.add_char log c;
      Scheduler.yield ()
    done
  in
  ignore (Scheduler.spawn s (worker 'x'));
  ignore (Scheduler.spawn s (worker 'y'));
  ignore (Scheduler.run s ());
  Alcotest.(check string) "round robin" "xyxyxy" (Buffer.contents log)

let test_priorities () =
  let _, s = sched_fixture () in
  let log = Buffer.create 16 in
  (* spawn low first; high priority must still run first *)
  ignore (Scheduler.spawn s ~priority:6 (fun () -> Buffer.add_char log 'l'));
  ignore (Scheduler.spawn s ~priority:1 (fun () -> Buffer.add_char log 'h'));
  ignore (Scheduler.run s ());
  Alcotest.(check string) "high first" "hl" (Buffer.contents log);
  (match Scheduler.spawn s ~priority:99 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad priority rejected")

let test_budget () =
  let _, s = sched_fixture () in
  let spins = ref 0 in
  ignore
    (Scheduler.spawn s (fun () ->
         while !spins < 100 do
           incr spins;
           Scheduler.yield ()
         done));
  let d = Scheduler.run s ~budget:5 () in
  Alcotest.(check int) "budget respected" 5 d;
  Alcotest.(check bool) "thread still live" true (Scheduler.live s > 0);
  ignore (Scheduler.run s ());
  Alcotest.(check int) "completes later" 100 !spins

let test_crash_isolated () =
  let clock, s = sched_fixture () in
  let survived = ref false in
  ignore (Scheduler.spawn s ~name:"crasher" (fun () -> failwith "boom"));
  ignore (Scheduler.spawn s ~name:"survivor" (fun () -> survived := true));
  ignore (Scheduler.run s ());
  Alcotest.(check bool) "other threads unaffected" true !survived;
  Alcotest.(check int) "crash counted" 1 (Scheduler.stats s `Crashes);
  Alcotest.(check int) "crash in clock counters" 1 (Clock.counter clock "thread_crash");
  Alcotest.(check int) "no leaked live" 0 (Scheduler.live s)

let test_self () =
  let _, s = sched_fixture () in
  let seen = ref None in
  let th = Scheduler.spawn s ~name:"me" (fun () -> seen := Some (Scheduler.self ())) in
  ignore (Scheduler.run s ());
  (match !seen with
  | Some me -> Alcotest.(check int) "self is me" th.Scheduler.tid me.Scheduler.tid
  | None -> Alcotest.fail "self not captured")

(* --- waitq / mutex / condvar / semaphore / ivar ------------------------- *)

let test_waitq () =
  let _, s = sched_fixture () in
  let q = Sync.Waitq.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Scheduler.spawn s (fun () ->
           Sync.Waitq.wait q;
           incr woken))
  done;
  ignore (Scheduler.run s ());
  Alcotest.(check int) "all parked" 3 (Sync.Waitq.length q);
  Alcotest.(check bool) "signal" true (Sync.Waitq.signal q);
  ignore (Scheduler.run s ());
  Alcotest.(check int) "one woken" 1 !woken;
  Alcotest.(check int) "broadcast" 2 (Sync.Waitq.broadcast q);
  ignore (Scheduler.run s ());
  Alcotest.(check int) "all woken" 3 !woken;
  Alcotest.(check bool) "empty signal" false (Sync.Waitq.signal q)

let test_mutex_exclusion () =
  let _, s = sched_fixture () in
  let m = Sync.Mutex.create () in
  let in_section = ref 0 and max_seen = ref 0 and done_count = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Scheduler.spawn s (fun () ->
           Sync.Mutex.lock m;
           incr in_section;
           if !in_section > !max_seen then max_seen := !in_section;
           Scheduler.yield ();
           (* hold across a reschedule *)
           decr in_section;
           Sync.Mutex.unlock m;
           incr done_count))
  done;
  ignore (Scheduler.run s ());
  Alcotest.(check int) "mutual exclusion" 1 !max_seen;
  Alcotest.(check int) "all completed" 4 !done_count;
  Alcotest.(check bool) "unlocked at end" false (Sync.Mutex.locked m)

let test_mutex_trylock_with_lock () =
  let _, s = sched_fixture () in
  let m = Sync.Mutex.create () in
  ignore
    (Scheduler.spawn s (fun () ->
         Alcotest.(check bool) "try_lock free" true (Sync.Mutex.try_lock m);
         Alcotest.(check bool) "try_lock held" false (Sync.Mutex.try_lock m);
         Sync.Mutex.unlock m;
         let r = Sync.Mutex.with_lock m (fun () -> 42) in
         Alcotest.(check int) "with_lock result" 42 r;
         Alcotest.(check bool) "released after" false (Sync.Mutex.locked m);
         (match Sync.Mutex.with_lock m (fun () -> failwith "inner") with
         | exception Failure _ -> ()
         | _ -> Alcotest.fail "exception propagates");
         Alcotest.(check bool) "released after exn" false (Sync.Mutex.locked m)));
  ignore (Scheduler.run s ());
  Alcotest.check_raises "unlock unlocked" (Invalid_argument "Mutex.unlock: not locked")
    (fun () -> Sync.Mutex.unlock m)

let test_condvar_producer_consumer () =
  let _, s = sched_fixture () in
  let m = Sync.Mutex.create () in
  let cv = Sync.Condvar.create () in
  let queue = Queue.create () in
  let consumed = ref [] in
  ignore
    (Scheduler.spawn s ~name:"consumer" (fun () ->
         Sync.Mutex.lock m;
         let rec take n =
           if n > 0 then begin
             while Queue.is_empty queue do
               Sync.Condvar.wait cv m
             done;
             consumed := Queue.pop queue :: !consumed;
             take (n - 1)
           end
         in
         take 3;
         Sync.Mutex.unlock m));
  ignore
    (Scheduler.spawn s ~name:"producer" (fun () ->
         List.iter
           (fun v ->
             Sync.Mutex.lock m;
             Queue.push v queue;
             Sync.Condvar.signal cv;
             Sync.Mutex.unlock m;
             Scheduler.yield ())
           [ 1; 2; 3 ]));
  ignore (Scheduler.run s ());
  Alcotest.(check (list int)) "consumed in order" [ 1; 2; 3 ] (List.rev !consumed)

let test_semaphore () =
  let _, s = sched_fixture () in
  let sem = Sync.Semaphore.create 2 in
  let inside = ref 0 and peak = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Scheduler.spawn s (fun () ->
           Sync.Semaphore.acquire sem;
           incr inside;
           if !inside > !peak then peak := !inside;
           Scheduler.yield ();
           decr inside;
           Sync.Semaphore.release sem))
  done;
  ignore (Scheduler.run s ());
  Alcotest.(check int) "at most 2 inside" 2 !peak;
  Alcotest.(check int) "value restored" 2 (Sync.Semaphore.value sem);
  Alcotest.(check bool) "try_acquire" true (Sync.Semaphore.try_acquire sem)

let test_ivar () =
  let _, s = sched_fixture () in
  let iv = Sync.Ivar.create () in
  let got = ref [] in
  for _ = 1 to 2 do
    ignore
      (Scheduler.spawn s (fun () ->
           (* bind first: [::] evaluates right-to-left, so inlining the
              read would snapshot [!got] before suspending *)
           let v = Sync.Ivar.read iv in
           got := v :: !got))
  done;
  ignore (Scheduler.run s ());
  Alcotest.(check (option int)) "unfilled peek" None (Sync.Ivar.peek iv);
  Sync.Ivar.fill iv 7;
  ignore (Scheduler.run s ());
  Alcotest.(check (list int)) "both readers" [ 7; 7 ] !got;
  (match Sync.Ivar.fill iv 8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double fill rejected")

(* --- pop-up threads ------------------------------------------------------ *)

let test_popup_fast_path () =
  let clock, s = sched_fixture () in
  let ran = ref false in
  let fast = Scheduler.popup s (fun () -> ran := true) in
  Alcotest.(check bool) "completed inline" true fast;
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "no promotion" 0 (Scheduler.stats s `Promotions);
  Alcotest.(check int) "fast counted" 1 (Scheduler.stats s `Popup_fast);
  Alcotest.(check int) "proto cost charged" 1 (Clock.counter clock "proto_thread");
  Alcotest.(check int) "no live threads" 0 (Scheduler.live s)

let test_popup_promotes_on_block () =
  let clock, s = sched_fixture () in
  let sem = Sync.Semaphore.create 0 in
  let finished = ref false in
  let fast =
    Scheduler.popup s (fun () ->
        Sync.Semaphore.acquire sem;
        finished := true)
  in
  Alcotest.(check bool) "did not complete inline" false fast;
  Alcotest.(check int) "promoted" 1 (Scheduler.stats s `Promotions);
  Alcotest.(check int) "promotion cost charged" 1 (Clock.counter clock "popup_promotion");
  Alcotest.(check int) "now a live thread" 1 (Scheduler.live s);
  Sync.Semaphore.release sem;
  ignore (Scheduler.run s ());
  Alcotest.(check bool) "completed under scheduler" true !finished;
  Alcotest.(check int) "no live threads" 0 (Scheduler.live s)

let test_popup_promotes_on_yield () =
  let _, s = sched_fixture () in
  let steps = ref 0 in
  let fast =
    Scheduler.popup s (fun () ->
        incr steps;
        Scheduler.yield ();
        incr steps)
  in
  Alcotest.(check bool) "rescheduling promotes" false fast;
  Alcotest.(check int) "first part ran inline" 1 !steps;
  ignore (Scheduler.run s ());
  Alcotest.(check int) "second part under scheduler" 2 !steps

let test_popup_promotes_once () =
  let _, s = sched_fixture () in
  ignore
    (Scheduler.popup s (fun () ->
         Scheduler.yield ();
         Scheduler.yield ();
         Scheduler.yield ()));
  ignore (Scheduler.run s ());
  Alcotest.(check int) "single promotion" 1 (Scheduler.stats s `Promotions)

let test_popup_crash_isolated () =
  let _, s = sched_fixture () in
  let fast = Scheduler.popup s (fun () -> failwith "interrupt handler bug") in
  Alcotest.(check bool) "crash still counts as completed-inline path" true fast;
  Alcotest.(check int) "crash counted" 1 (Scheduler.stats s `Crashes);
  Alcotest.(check int) "no live threads" 0 (Scheduler.live s)

let test_popup_nested_in_thread () =
  (* an "interrupt" arriving while a thread runs: popup nests fine *)
  let _, s = sched_fixture () in
  let order = Buffer.create 8 in
  ignore
    (Scheduler.spawn s (fun () ->
         Buffer.add_char order 't';
         ignore (Scheduler.popup s (fun () -> Buffer.add_char order 'i'));
         Buffer.add_char order 'r'));
  ignore (Scheduler.run s ());
  Alcotest.(check string) "interrupt preempts inline" "tir" (Buffer.contents order)

let test_effects_outside_thread_rejected () =
  (match Scheduler.yield () with
  | exception Effect.Unhandled _ -> ()
  | _ -> Alcotest.fail "yield outside thread must be unhandled")


(* --- scheduling policies ------------------------------------------------- *)

let test_policy_fifo_ignores_priority () =
  let clock = Clock.create () in
  let s = Scheduler.create ~policy:Scheduler.Fifo clock Cost.unit_costs in
  let log = Buffer.create 8 in
  (* low priority spawned first runs first under FIFO *)
  ignore (Scheduler.spawn s ~priority:7 (fun () -> Buffer.add_char log 'l'));
  ignore (Scheduler.spawn s ~priority:0 (fun () -> Buffer.add_char log 'h'));
  ignore (Scheduler.run s ());
  Alcotest.(check string) "arrival order" "lh" (Buffer.contents log)

let test_policy_lottery_deterministic () =
  let order policy =
    let clock = Clock.create () in
    let s = Scheduler.create ~policy clock Cost.unit_costs in
    let log = Buffer.create 16 in
    for i = 0 to 7 do
      ignore
        (Scheduler.spawn s ~priority:(i mod Scheduler.priorities) (fun () ->
             Buffer.add_char log (Char.chr (Char.code '0' + i))))
    done;
    ignore (Scheduler.run s ());
    Buffer.contents log
  in
  Alcotest.(check string) "same seed, same order"
    (order (Scheduler.Lottery 42))
    (order (Scheduler.Lottery 42));
  Alcotest.(check bool) "different seeds eventually differ" true
    (order (Scheduler.Lottery 1) <> order (Scheduler.Lottery 99)
    || order (Scheduler.Lottery 2) <> order (Scheduler.Lottery 77))

let test_policy_lottery_favors_high_priority () =
  (* two yield-loop threads; count how often each runs: the high-priority
     one holds 8 tickets to the low one's 1 *)
  let clock = Clock.create () in
  let s = Scheduler.create ~policy:(Scheduler.Lottery 7) clock Cost.unit_costs in
  let high = ref 0 and low = ref 0 in
  let loop counter () =
    for _ = 1 to 200 do
      incr counter;
      Scheduler.yield ()
    done
  in
  ignore (Scheduler.spawn s ~priority:0 (loop high));
  ignore (Scheduler.spawn s ~priority:7 (loop low));
  (* run a bounded number of dispatches so the mix is observable *)
  ignore (Scheduler.run s ~budget:150 ());
  Alcotest.(check bool)
    (Printf.sprintf "8:1 tickets show (high=%d low=%d)" !high !low)
    true
    (!high > !low * 2);
  ignore (Scheduler.run s ())

let test_policy_all_complete () =
  List.iter
    (fun policy ->
      let clock = Clock.create () in
      let s = Scheduler.create ~policy clock Cost.unit_costs in
      let completed = ref 0 in
      for i = 0 to 19 do
        ignore
          (Scheduler.spawn s ~priority:(i mod Scheduler.priorities) (fun () ->
               Scheduler.yield ();
               incr completed))
      done;
      ignore (Scheduler.run s ());
      Alcotest.(check int) "all complete" 20 !completed;
      Alcotest.(check int) "none live" 0 (Scheduler.live s))
    [ Scheduler.Priority; Scheduler.Fifo; Scheduler.Lottery 3 ]

(* --- properties ------------------------------------------------------------ *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let props =
  [
    prop "every spawned thread runs to completion"
      QCheck2.Gen.(list_size (int_range 1 20) (int_bound 3))
      (fun yields ->
        let _, s = sched_fixture () in
        let completed = ref 0 in
        List.iter
          (fun y ->
            ignore
              (Scheduler.spawn s (fun () ->
                   for _ = 1 to y do
                     Scheduler.yield ()
                   done;
                   incr completed)))
          yields;
        ignore (Scheduler.run s ());
        !completed = List.length yields && Scheduler.live s = 0);
    prop "popup fast-path iff body performs no effect"
      QCheck2.Gen.(list_size (int_range 1 15) bool)
      (fun blocks ->
        let _, s = sched_fixture () in
        let ok = ref true in
        List.iter
          (fun b ->
            let fast = Scheduler.popup s (fun () -> if b then Scheduler.yield ()) in
            if fast = b then ok := false)
          blocks;
        ignore (Scheduler.run s ());
        !ok && Scheduler.live s = 0);
    prop "semaphore never over-admits"
      QCheck2.Gen.(pair (int_range 1 4) (int_range 1 12))
      (fun (cap, threads) ->
        let _, s = sched_fixture () in
        let sem = Sync.Semaphore.create cap in
        let inside = ref 0 and peak = ref 0 in
        for _ = 1 to threads do
          ignore
            (Scheduler.spawn s (fun () ->
                 Sync.Semaphore.acquire sem;
                 incr inside;
                 if !inside > !peak then peak := !inside;
                 Scheduler.yield ();
                 decr inside;
                 Sync.Semaphore.release sem))
        done;
        ignore (Scheduler.run s ());
        !peak <= cap && Scheduler.live s = 0);
  ]

let () =
  Alcotest.run "threads"
    [
      ( "scheduler",
        [
          Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
          Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
          Alcotest.test_case "priorities" `Quick test_priorities;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "crash isolated" `Quick test_crash_isolated;
          Alcotest.test_case "self" `Quick test_self;
        ] );
      ( "sync",
        [
          Alcotest.test_case "waitq" `Quick test_waitq;
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "mutex try/with" `Quick test_mutex_trylock_with_lock;
          Alcotest.test_case "condvar producer/consumer" `Quick
            test_condvar_producer_consumer;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "ivar" `Quick test_ivar;
        ] );
      ( "policies",
        [
          Alcotest.test_case "fifo ignores priority" `Quick
            test_policy_fifo_ignores_priority;
          Alcotest.test_case "lottery deterministic" `Quick
            test_policy_lottery_deterministic;
          Alcotest.test_case "lottery favors high priority" `Quick
            test_policy_lottery_favors_high_priority;
          Alcotest.test_case "all policies complete" `Quick test_policy_all_complete;
        ] );
      ( "popup",
        [
          Alcotest.test_case "fast path" `Quick test_popup_fast_path;
          Alcotest.test_case "promotes on block" `Quick test_popup_promotes_on_block;
          Alcotest.test_case "promotes on yield" `Quick test_popup_promotes_on_yield;
          Alcotest.test_case "promotes once" `Quick test_popup_promotes_once;
          Alcotest.test_case "crash isolated" `Quick test_popup_crash_isolated;
          Alcotest.test_case "nested in thread" `Quick test_popup_nested_in_thread;
          Alcotest.test_case "effects outside thread" `Quick
            test_effects_outside_thread_rejected;
        ] );
      ("properties", props);
    ]
