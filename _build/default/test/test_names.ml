(* Tests for instance naming: paths, the hierarchical name space, views
   with overrides and inheritance. *)

open Paramecium

let ctx_fixture () =
  let clock = Clock.create () in
  (clock, Call_ctx.make ~clock ~costs:Cost.unit_costs ~caller_domain:0)

let p = Path.of_string

let ns_err =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Namespace.error_to_string e))
    ( = )

(* --- paths ------------------------------------------------------------ *)

let test_path_parse () =
  Alcotest.(check (list string)) "segments" [ "shared"; "network" ]
    (Path.segments (p "/shared/network"));
  Alcotest.(check string) "round trip" "/shared/network"
    (Path.to_string (p "/shared/network"));
  Alcotest.(check string) "root" "/" (Path.to_string Path.root);
  Alcotest.(check int) "length" 2 (Path.length (p "/a/b"));
  List.iter
    (fun bad ->
      match p bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %S" bad)
    [ ""; "relative"; "/a//b"; "/a/b!"; "/sp ace" ]

let test_path_ops () =
  Alcotest.(check string) "child" "/a/b" (Path.to_string (Path.child (p "/a") "b"));
  Alcotest.(check (option string)) "parent" (Some "/a")
    (Option.map Path.to_string (Path.parent (p "/a/b")));
  Alcotest.(check (option string)) "parent of root" None
    (Option.map Path.to_string (Path.parent Path.root));
  Alcotest.(check (option string)) "basename" (Some "b") (Path.basename (p "/a/b"));
  Alcotest.(check bool) "prefix" true (Path.is_prefix (p "/a") (p "/a/b"));
  Alcotest.(check bool) "not prefix" false (Path.is_prefix (p "/a/b") (p "/a"));
  Alcotest.(check bool) "equal" true (Path.equal (p "/a/b") (p "/a/b"))

(* --- namespace --------------------------------------------------------- *)

let test_ns_register_lookup () =
  let ns = Namespace.create () in
  Alcotest.(check (result unit ns_err)) "register" (Ok ())
    (Namespace.register ns (p "/services/stack") 7);
  Alcotest.(check (result int ns_err)) "lookup" (Ok 7)
    (Namespace.lookup ns (p "/services/stack"));
  Alcotest.(check (result int ns_err)) "missing"
    (Error (Namespace.Not_found (p "/services/other")))
    (Namespace.lookup ns (p "/services/other"));
  Alcotest.(check (result unit ns_err)) "duplicate"
    (Error (Namespace.Already_bound (p "/services/stack")))
    (Namespace.register ns (p "/services/stack") 9);
  Alcotest.(check bool) "exists" true (Namespace.exists ns (p "/services/stack"));
  Alcotest.(check bool) "dir exists" true (Namespace.exists ns (p "/services"));
  Alcotest.(check bool) "root exists" true (Namespace.exists ns Path.root)

let test_ns_structure_errors () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/a/leaf") 1);
  Alcotest.(check (result unit ns_err)) "entry in path"
    (Error (Namespace.Not_a_directory (p "/a/leaf")))
    (Namespace.register ns (p "/a/leaf/deeper") 2);
  Alcotest.(check (result int ns_err)) "lookup dir"
    (Error (Namespace.Is_a_directory (p "/a")))
    (Namespace.lookup ns (p "/a"));
  Alcotest.(check (result unit ns_err)) "unregister dir"
    (Error (Namespace.Is_a_directory (p "/a")))
    (Namespace.unregister ns (p "/a"))

let test_ns_unregister () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/x") 1);
  Alcotest.(check (result unit ns_err)) "unregister" (Ok ())
    (Namespace.unregister ns (p "/x"));
  Alcotest.(check bool) "gone" false (Namespace.exists ns (p "/x"));
  Alcotest.(check (result unit ns_err)) "again"
    (Error (Namespace.Not_found (p "/x")))
    (Namespace.unregister ns (p "/x"))

let test_ns_replace_interposition () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/shared/network") 10);
  Alcotest.(check (result int ns_err)) "replace returns old" (Ok 10)
    (Namespace.replace ns (p "/shared/network") 99);
  Alcotest.(check (result int ns_err)) "new handle visible" (Ok 99)
    (Namespace.lookup ns (p "/shared/network"));
  Alcotest.(check (result int ns_err)) "replace missing"
    (Error (Namespace.Not_found (p "/nothing")))
    (Namespace.replace ns (p "/nothing") 1)

let test_ns_list_iter () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/svc/b") 2);
  ignore (Namespace.register ns (p "/svc/a") 1);
  ignore (Namespace.register ns (p "/svc/sub/c") 3);
  (match Namespace.list ns (p "/svc") with
  | Ok entries ->
    Alcotest.(check (list (pair string (option int))))
      "sorted listing"
      [ ("a", Some 1); ("b", Some 2); ("sub", None) ]
      entries
  | Error _ -> Alcotest.fail "list failed");
  let all = ref [] in
  Namespace.iter ns (fun path h -> all := (Path.to_string path, h) :: !all);
  Alcotest.(check (list (pair string int)))
    "iter in path order"
    [ ("/svc/a", 1); ("/svc/b", 2); ("/svc/sub/c", 3) ]
    (List.rev !all)

(* --- views -------------------------------------------------------------- *)

let test_view_resolution_order () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/shared/net") 1);
  let root = View.of_namespace ns in
  let parent = View.derive ~overrides:[ (p "/shared/net", 2) ] root in
  let child = View.derive parent in
  let grandchild = View.derive ~overrides:[ (p "/shared/net", 3) ] child in
  let _, ctx = ctx_fixture () in
  let bind v = View.bind ctx v (p "/shared/net") in
  Alcotest.(check (result int ns_err)) "root sees namespace" (Ok 1) (bind root);
  Alcotest.(check (result int ns_err)) "parent sees own override" (Ok 2) (bind parent);
  Alcotest.(check (result int ns_err)) "child inherits parent" (Ok 2) (bind child);
  Alcotest.(check (result int ns_err)) "grandchild overrides again" (Ok 3)
    (bind grandchild)

let test_view_override_mutation () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/x") 1);
  let root = View.of_namespace ns in
  let v = View.derive root in
  let _, ctx = ctx_fixture () in
  View.add_override v (p "/x") 5;
  Alcotest.(check (result int ns_err)) "override added" (Ok 5) (View.bind ctx v (p "/x"));
  View.add_override v (p "/x") 6;
  Alcotest.(check (result int ns_err)) "override updated" (Ok 6) (View.bind ctx v (p "/x"));
  Alcotest.(check int) "no duplicates" 1 (List.length (View.overrides v));
  View.remove_override v (p "/x");
  Alcotest.(check (result int ns_err)) "fallthrough after removal" (Ok 1)
    (View.bind ctx v (p "/x"))

let test_view_charges_costs () =
  let ns = Namespace.create () in
  ignore (Namespace.register ns (p "/a/b/c") 1);
  let root = View.of_namespace ns in
  let clock, ctx = ctx_fixture () in
  ignore (View.bind ctx root (p "/a/b/c"));
  (* unit costs: 3 path components = 3 cycles *)
  Alcotest.(check int) "3 components charged" 3 (Clock.now clock);
  Alcotest.(check int) "bind counted" 1 (Clock.counter clock "ns_bind");
  let v = View.derive ~overrides:[ (p "/zz", 9) ] root in
  let before = Clock.now clock in
  ignore (View.bind ctx v (p "/a/b/c"));
  (* one override consulted + 3 components *)
  Alcotest.(check int) "override consult charged" (before + 4) (Clock.now clock)

let test_view_binds_missing () =
  let ns = Namespace.create () in
  let root = View.of_namespace ns in
  let _, ctx = ctx_fixture () in
  (match View.bind_exn ctx root (p "/ghost") with
  | exception Namespace.Name_error (Namespace.Not_found _) -> ()
  | _ -> Alcotest.fail "expected Name_error")

(* --- properties ---------------------------------------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let gen_seg =
  QCheck2.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 6) (char_range 'a' 'z')))

let gen_path =
  QCheck2.Gen.(
    map
      (fun segs -> List.fold_left Path.child Path.root segs)
      (list_size (int_range 1 4) gen_seg))

let props =
  [
    prop "path string round trip" gen_path (fun path ->
        Path.equal path (Path.of_string (Path.to_string path)));
    prop "register then lookup" (QCheck2.Gen.pair gen_path QCheck2.Gen.small_int)
      (fun (path, h) ->
        let ns = Namespace.create () in
        match Namespace.register ns path h with
        | Ok () -> Namespace.lookup ns path = Ok h
        | Error _ -> false);
    prop "register, unregister, lookup fails" gen_path (fun path ->
        let ns = Namespace.create () in
        match Namespace.register ns path 1 with
        | Ok () ->
          Namespace.unregister ns path = Ok ()
          && Namespace.lookup ns path = Error (Namespace.Not_found path)
        | Error _ -> false);
    prop "child then parent is identity" (QCheck2.Gen.pair gen_path gen_seg)
      (fun (path, seg) ->
        match Path.parent (Path.child path seg) with
        | Some q -> Path.equal path q
        | None -> false);
    prop "replace preserves the rest of the namespace"
      (QCheck2.Gen.pair gen_path gen_path)
      (fun (p1, p2) ->
        if Path.equal p1 p2 || Path.is_prefix p1 p2 || Path.is_prefix p2 p1 then true
        else begin
          let ns = Namespace.create () in
          match (Namespace.register ns p1 1, Namespace.register ns p2 2) with
          | Ok (), Ok () ->
            Namespace.replace ns p1 10 = Ok 1 && Namespace.lookup ns p2 = Ok 2
          | _ ->
            (* structurally conflicting paths (entry inside entry) are fine
               to skip: the conflict behaviour is tested elsewhere *)
            true
        end);
    prop "random namespace ops match a map model"
      QCheck2.Gen.(
        list_size (int_range 1 40)
          (pair (int_bound 5)
             (oneofl [ `Register; `Unregister; `Replace; `Lookup ])))
      (fun ops ->
        (* a flat pool of names avoids entry-vs-directory conflicts, which
           are covered by the structural-error unit tests *)
        let pool = [| "/a"; "/b"; "/c"; "/sub/x"; "/sub/y"; "/sub/z" |] in
        let ns = Namespace.create () in
        let model : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let counter = ref 0 in
        List.for_all
          (fun (which, op) ->
            let name = pool.(which) in
            let path = p name in
            incr counter;
            match op with
            | `Register -> (
              match (Namespace.register ns path !counter, Hashtbl.mem model name) with
              | Ok (), false ->
                Hashtbl.replace model name !counter;
                true
              | Error (Namespace.Already_bound _), true -> true
              | _ -> false)
            | `Unregister -> (
              match (Namespace.unregister ns path, Hashtbl.mem model name) with
              | Ok (), true ->
                Hashtbl.remove model name;
                true
              | Error (Namespace.Not_found _), false -> true
              | _ -> false)
            | `Replace -> (
              match (Namespace.replace ns path !counter, Hashtbl.find_opt model name) with
              | Ok old, Some expect when old = expect ->
                Hashtbl.replace model name !counter;
                true
              | Error (Namespace.Not_found _), None -> true
              | _ -> false)
            | `Lookup -> (
              match (Namespace.lookup ns path, Hashtbl.find_opt model name) with
              | Ok h, Some expect -> h = expect
              | Error (Namespace.Not_found _), None -> true
              | _ -> false))
          ops);
  ]

let () =
  Alcotest.run "names"
    [
      ( "path",
        [
          Alcotest.test_case "parse" `Quick test_path_parse;
          Alcotest.test_case "operations" `Quick test_path_ops;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "register/lookup" `Quick test_ns_register_lookup;
          Alcotest.test_case "structural errors" `Quick test_ns_structure_errors;
          Alcotest.test_case "unregister" `Quick test_ns_unregister;
          Alcotest.test_case "replace (interposition)" `Quick
            test_ns_replace_interposition;
          Alcotest.test_case "list/iter" `Quick test_ns_list_iter;
        ] );
      ( "views",
        [
          Alcotest.test_case "resolution order" `Quick test_view_resolution_order;
          Alcotest.test_case "override mutation" `Quick test_view_override_mutation;
          Alcotest.test_case "cost charging" `Quick test_view_charges_costs;
          Alcotest.test_case "missing name" `Quick test_view_binds_missing;
        ] );
      ("properties", props);
    ]
