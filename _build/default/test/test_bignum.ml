(* Unit and property tests for Pm_bignum.Nat. *)

open Paramecium
module N = Nat

let nat = Alcotest.testable N.pp N.equal

let n_of_s = N.of_string
let check_nat = Alcotest.check nat

(* --- unit tests ----------------------------------------------------- *)

let test_of_to_int () =
  Alcotest.(check (option int)) "zero" (Some 0) (N.to_int N.zero);
  Alcotest.(check (option int)) "small" (Some 12345) (N.to_int (N.of_int 12345));
  Alcotest.(check (option int))
    "max_int round-trips" (Some max_int)
    (N.to_int (N.of_int max_int));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Nat.of_int: negative")
    (fun () -> ignore (N.of_int (-1)))

let test_string_round_trip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (N.to_string (n_of_s s)))
    [ "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_hex () =
  Alcotest.(check string) "hex" "deadbeef" (N.to_hex (n_of_s "0xdeadbeef"));
  check_nat "hex parse" (N.of_int 255) (n_of_s "0xff");
  Alcotest.(check string) "zero hex" "0" (N.to_hex N.zero)

let test_of_string_malformed () =
  List.iter
    (fun s ->
      Alcotest.check_raises ("malformed " ^ s)
        (Invalid_argument "Nat.of_string: malformed number") (fun () ->
          ignore (n_of_s s)))
    [ ""; "abc"; "12x3"; "0xg1"; "-5" ]

let test_add_sub () =
  let a = n_of_s "99999999999999999999999999" in
  let b = n_of_s "1" in
  check_nat "add carries" (n_of_s "100000000000000000000000000") (N.add a b);
  check_nat "sub borrows" a (N.sub (N.add a b) b);
  Alcotest.check_raises "sub underflow" (Invalid_argument "Nat.sub: would be negative")
    (fun () -> ignore (N.sub b a))

let test_mul_known () =
  check_nat "known product"
    (n_of_s "121932631137021795226185032733622923332237463801111263526900")
    (N.mul
       (n_of_s "123456789012345678901234567890")
       (n_of_s "987654321098765432109876543210"));
  check_nat "mul by zero" N.zero (N.mul N.zero (n_of_s "123456789"))

let test_divmod_known () =
  let q, r = N.divmod (n_of_s "1000000000000000000000") (n_of_s "7777777") in
  check_nat "quotient" (n_of_s "128571441428572") q;
  (* 128571441428572 * 7777777 + r = 10^21 *)
  check_nat "reconstruct" (n_of_s "1000000000000000000000")
    (N.add (N.mul q (n_of_s "7777777")) r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (N.divmod N.one N.zero))

let test_shifts () =
  check_nat "shl 1" (N.of_int 2) (N.shift_left N.one 1);
  check_nat "shl 100"
    (n_of_s "1267650600228229401496703205376")
    (N.shift_left N.one 100);
  check_nat "shr inverse" N.one (N.shift_right (N.shift_left N.one 100) 100);
  check_nat "shr to zero" N.zero (N.shift_right (N.of_int 5) 3)

let test_bits () =
  Alcotest.(check int) "bitlen 0" 0 (N.bit_length N.zero);
  Alcotest.(check int) "bitlen 1" 1 (N.bit_length N.one);
  Alcotest.(check int) "bitlen 2^100" 101 (N.bit_length (N.shift_left N.one 100));
  Alcotest.(check bool) "bit 100 set" true (N.test_bit (N.shift_left N.one 100) 100);
  Alcotest.(check bool) "bit 99 clear" false (N.test_bit (N.shift_left N.one 100) 99)

let test_pow () =
  check_nat "2^10" (N.of_int 1024) (N.pow N.two 10);
  check_nat "x^0" N.one (N.pow (n_of_s "123456789") 0);
  check_nat "3^40" (n_of_s "12157665459056928801") (N.pow (N.of_int 3) 40)

let test_mod_pow () =
  (* Fermat: a^(p-1) = 1 mod p for prime p *)
  let p = n_of_s "1000000007" in
  check_nat "fermat" N.one (N.mod_pow (N.of_int 2) (N.sub p N.one) p);
  check_nat "mod 1" N.zero (N.mod_pow (N.of_int 5) (N.of_int 3) N.one)

let test_gcd_modinv () =
  check_nat "gcd" (N.of_int 6) (N.gcd (N.of_int 48) (N.of_int 18));
  let m = n_of_s "1000000007" in
  let a = n_of_s "123456789" in
  let inv = N.mod_inv a m in
  check_nat "a * a^-1 = 1" N.one (N.rem (N.mul a inv) m);
  Alcotest.check_raises "no inverse" Not_found (fun () ->
      ignore (N.mod_inv (N.of_int 4) (N.of_int 8)))

let test_bytes_round_trip () =
  let x = n_of_s "0x0102030405060708090a" in
  let s = N.to_bytes_be x in
  Alcotest.(check int) "length" 10 (String.length s);
  check_nat "round trip" x (N.of_bytes_be s);
  let padded = N.to_bytes_be ~len:16 x in
  Alcotest.(check int) "padded length" 16 (String.length padded);
  check_nat "padded round trip" x (N.of_bytes_be padded);
  Alcotest.check_raises "too large for len"
    (Invalid_argument "Nat.to_bytes_be: value too large for len") (fun () ->
      ignore (N.to_bytes_be ~len:2 x))

let test_compare_minmax () =
  let a = n_of_s "100000000000000000000" and b = n_of_s "99999999999999999999" in
  Alcotest.(check bool) "a > b" true (N.compare a b > 0);
  check_nat "min" b (N.min a b);
  check_nat "max" a (N.max a b);
  Alcotest.(check bool) "even" true (N.is_even (N.of_int 42));
  Alcotest.(check bool) "odd" true (N.is_odd (N.of_int 43))

(* --- properties ----------------------------------------------------- *)

(* random naturals up to ~2^120, biased toward interesting small cases *)
let gen_nat =
  QCheck2.Gen.(
    frequency
      [
        (1, return N.zero);
        (1, return N.one);
        (3, map N.of_int (int_bound 1000));
        ( 6,
          map
            (fun parts ->
              List.fold_left
                (fun acc p -> N.add (N.shift_left acc 30) (N.of_int p))
                N.zero parts)
            (list_size (int_range 1 4) (int_bound ((1 lsl 30) - 1))) );
      ])

let arb_nat = QCheck2.Gen.map (fun n -> n) gen_nat

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let props =
  [
    prop "add commutative" (QCheck2.Gen.pair arb_nat arb_nat) (fun (a, b) ->
        N.equal (N.add a b) (N.add b a));
    prop "add associative" (QCheck2.Gen.triple arb_nat arb_nat arb_nat)
      (fun (a, b, c) -> N.equal (N.add (N.add a b) c) (N.add a (N.add b c)));
    prop "mul commutative" (QCheck2.Gen.pair arb_nat arb_nat) (fun (a, b) ->
        N.equal (N.mul a b) (N.mul b a));
    prop "mul distributes" (QCheck2.Gen.triple arb_nat arb_nat arb_nat)
      (fun (a, b, c) ->
        N.equal (N.mul a (N.add b c)) (N.add (N.mul a b) (N.mul a c)));
    prop "sub inverts add" (QCheck2.Gen.pair arb_nat arb_nat) (fun (a, b) ->
        N.equal (N.sub (N.add a b) b) a);
    prop "divmod law" (QCheck2.Gen.pair arb_nat arb_nat) (fun (a, b) ->
        if N.is_zero b then QCheck2.assume_fail ()
        else begin
          let q, r = N.divmod a b in
          N.equal a (N.add (N.mul q b) r) && N.compare r b < 0
        end);
    prop "string round trip" arb_nat (fun a -> N.equal a (N.of_string (N.to_string a)));
    prop "bytes round trip" arb_nat (fun a ->
        N.equal a (N.of_bytes_be (N.to_bytes_be a)));
    prop "shift round trip" (QCheck2.Gen.pair arb_nat (QCheck2.Gen.int_bound 80))
      (fun (a, k) -> N.equal a (N.shift_right (N.shift_left a k) k));
    prop "bit_length bounds" arb_nat (fun a ->
        if N.is_zero a then N.bit_length a = 0
        else begin
          let bl = N.bit_length a in
          N.compare a (N.shift_left N.one bl) < 0
          && N.compare a (N.shift_left N.one (bl - 1)) >= 0
        end);
    prop "mod_pow matches pow for small args"
      (QCheck2.Gen.triple (QCheck2.Gen.int_bound 30) (QCheck2.Gen.int_bound 8)
         (QCheck2.Gen.int_range 1 1000))
      (fun (b, e, m) ->
        let m = N.of_int m in
        N.equal
          (N.mod_pow (N.of_int b) (N.of_int e) m)
          (N.rem (N.pow (N.of_int b) e) m));
    prop "gcd divides both" (QCheck2.Gen.pair arb_nat arb_nat) (fun (a, b) ->
        if N.is_zero a && N.is_zero b then true
        else begin
          let g = N.gcd a b in
          (N.is_zero a || N.is_zero (N.rem a g))
          && (N.is_zero b || N.is_zero (N.rem b g))
        end);
  ]

let () =
  Alcotest.run "bignum"
    [
      ( "nat-unit",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "string round trip" `Quick test_string_round_trip;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "malformed strings" `Quick test_of_string_malformed;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "mod_pow" `Quick test_mod_pow;
          Alcotest.test_case "gcd/modinv" `Quick test_gcd_modinv;
          Alcotest.test_case "bytes round trip" `Quick test_bytes_round_trip;
          Alcotest.test_case "compare/min/max" `Quick test_compare_minmax;
        ] );
      ("nat-properties", props);
    ]
