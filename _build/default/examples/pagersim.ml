(* Demand paging outside the nucleus.

   A virtual-memory implementation as the paper intends: the nucleus
   provides per-page fault call-backs and raw map/unmap; the Pager
   component provides policy (CLOCK replacement, dirty tracking,
   write-back to the simulated disk). We run a working set through a
   small resident budget and watch the fault behaviour.

   Run with: dune exec examples/pagersim.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  let sys = System.create ~seed:13 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let m = Kernel.machine k in
  let ps = Machine.page_size m in
  let pager =
    Pager.create (Kernel.api k) kdom ~disk:(Kernel.disk k) ~resident_budget:8
      ~backing_pages:64 ~first_block:0
  in
  let base = Pager.base pager in
  say "managed region: 64 pages at %#x, 8 resident frames, disk-backed" base;

  (* phase 1: sequential write over the whole region (streaming) *)
  for p = 0 to 63 do
    Machine.write32 m kdom.Domain.id (base + (p * ps)) (p * p)
  done;
  say "after streaming writes: faults=%d pageins=%d pageouts=%d resident=%d"
    (Pager.faults pager) (Pager.pageins pager) (Pager.pageouts pager)
    (Pager.resident pager);

  (* phase 2: a small hot set fits in the budget -> no more disk traffic *)
  let before = Pager.pageins pager in
  for _ = 1 to 50 do
    for p = 0 to 5 do
      ignore (Machine.read32 m kdom.Domain.id (base + (p * ps)))
    done
  done;
  say "hot set of 6 pages, 300 accesses: %d additional page-ins"
    (Pager.pageins pager - before);

  (* phase 3: verify data integrity across all the paging traffic *)
  let ok = ref true in
  for p = 0 to 63 do
    if Machine.read32 m kdom.Domain.id (base + (p * ps)) <> p * p then ok := false
  done;
  say "data integrity after paging: %s" (if !ok then "intact" else "CORRUPTED");
  assert !ok;

  (* the pager is an ordinary object too *)
  let ctx = Kernel.ctx k kdom in
  (match Invoke.call_exn ctx (Pager.instance pager) ~iface:"pager" ~meth:"stats" [] with
  | Value.List [ f; pi; po; r ] ->
    say "pager object stats: faults=%s pageins=%s pageouts=%s resident=%s"
      (Value.to_string f) (Value.to_string pi) (Value.to_string po) (Value.to_string r)
  | v -> failwith (Value.to_string v));
  let flushed =
    Value.to_int (Invoke.call_exn ctx (Pager.instance pager) ~iface:"pager" ~meth:"flush" [])
  in
  say "flush wrote back %d dirty pages" flushed;
  say "pagersim done (%d cycles)" (Clock.now (Kernel.clock k))
