(* Quickstart: boot a Paramecium system, certify and load a component
   into the kernel protection domain, bind it by name, and invoke it.

   Run with: dune exec examples/quickstart.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* A trivial component: a key/value store exporting one interface. *)
let kvstore_construct (api : Api.t) (dom : Domain.t) =
  let table : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let put _ctx = function
    | [ Value.Str k; v ] ->
      Hashtbl.replace table k v;
      Ok Value.Unit
    | _ -> Error (Oerror.Type_error "put(str, any)")
  in
  let get _ctx = function
    | [ Value.Str k ] ->
      (match Hashtbl.find_opt table k with
      | Some v -> Ok v
      | None -> Error (Oerror.Fault ("no such key " ^ k)))
    | _ -> Error (Oerror.Type_error "get(str)")
  in
  let size _ctx = function
    | [] -> Ok (Value.Int (Hashtbl.length table))
    | _ -> Error (Oerror.Type_error "size()")
  in
  let iface =
    Iface.make ~name:"kvstore"
      [
        Iface.meth ~name:"put" ~args:[ Vtype.Tstr; Vtype.Tany ] ~ret:Vtype.Tunit put;
        Iface.meth ~name:"get" ~args:[ Vtype.Tstr ] ~ret:Vtype.Tany get;
        Iface.meth ~name:"size" ~args:[] ~ret:Vtype.Tint size;
      ]
  in
  Instance.create api.Api.registry ~class_name:"example.kvstore" ~domain:dom.Domain.id
    [ iface ]

let () =
  (* 1. Build a system: certification authority with the standard delegate
     chain, and a kernel that trusts it. *)
  let sys = System.create ~seed:42 () in
  let k = System.kernel sys in
  say "booted: %d domains, authority %s"
    (List.length (Kernel.domains k))
    (Principal.id (Authority.ca (System.authority sys)));

  (* 2. Package the component as a repository image. Marking it type_safe
     means the trusted-compiler delegate will certify it. *)
  let image =
    Images.image ~name:"kvstore" ~size:8_192 ~author:"example" ~type_safe:true
      kvstore_construct
  in

  (* 3. Certify and load it into the kernel protection domain. *)
  let kv = System.install_exn sys image ~placement:System.Certified ~at:"/services/kv" in
  say "loaded %s into domain %d (validations so far: %d)" kv.Instance.class_name
    kv.Instance.domain
    (Certsvc.validations (Kernel.certification k));

  (* 4. Bind it by name — from the kernel domain this is the instance
     itself; from a user domain it would be a proxy. *)
  let kdom = Kernel.kernel_domain k in
  let store = Kernel.bind k kdom "/services/kv" in
  let ctx = Kernel.ctx k kdom in
  let call meth args = Invoke.call_exn ctx store ~iface:"kvstore" ~meth args in
  ignore (call "put" [ Value.Str "greeting"; Value.Str "hello, paramecium" ]);
  ignore (call "put" [ Value.Str "answer"; Value.Int 42 ]);
  say "kv.size = %s" (Value.to_string (call "size" []));
  say "kv.get(greeting) = %s" (Value.to_string (call "get" [ Value.Str "greeting" ]));

  (* 5. The same object through a user domain: binding materializes a
     proxy and every call pays the cross-domain tax. *)
  let udom = System.new_domain sys "app" in
  let store_u = Kernel.bind k udom "/services/kv" in
  let ctx_u = Kernel.ctx k udom in
  let before = Clock.now (Kernel.clock k) in
  (match Invoke.call_exn ctx_u store_u ~iface:"kvstore" ~meth:"get" [ Value.Str "answer" ] with
  | Value.Int 42 -> ()
  | v -> failwith (Value.to_string v));
  say "user-domain get() = 42 via %s (%d cycles, %d cross-domain calls)"
    store_u.Instance.class_name
    (Clock.now (Kernel.clock k) - before)
    (Clock.counter (Kernel.clock k) "cross_domain_call");

  (* 6. Uncertified components cannot enter the kernel. *)
  let rogue = Images.image ~name:"rogue" ~size:1_024 ~author:"unknown" kvstore_construct in
  (match System.install sys rogue ~placement:System.Certified ~at:"/services/rogue" with
  | Error e -> say "rogue component refused: %s" e
  | Ok _ -> failwith "rogue admitted!");
  say "quickstart done; total simulated cycles: %d" (Clock.now (Kernel.clock k))
