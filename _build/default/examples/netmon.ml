(* Network monitoring via interposition — the paper's running example.

   "Building an interposing agent for a network device, /shared/network,
   consists of building an interposing object ... and replace the object
   handle in the name space. All further lookups for /shared/network will
   result in a reference to the interposing agent."

   We boot a system with an in-kernel certified protocol stack, slip a
   monitoring agent in front of the shared network device, replay some
   traffic, and read the monitor's counters — all without touching the
   driver or the stack.

   Run with: dune exec examples/netmon.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

let make_packet ctx ~dst ~dport payload =
  let tp = Wire.Transport.build ctx ~sport:9 ~dport (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src:13 ~dst ~ttl:8 ~proto:Stack.proto_transport tp in
  Wire.Frame.build ctx ~dst ~src:13 np

let () =
  let sys = System.create ~seed:7 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let ctx = Kernel.ctx k kdom in

  (* a custom interposer: counts per-method traffic and logs sends *)
  let log = ref [] in
  let agent =
    Interpose.wrap api kdom ~target:net.System.driver
      ~on_call:(fun ~iface ~meth args ->
        if String.equal iface "netdev" && String.equal meth "send" then begin
          match args with
          | [ Value.Blob b ] ->
            log := Printf.sprintf "send %dB" (Bytes.length b) :: !log
          | _ -> ()
        end)
      ()
  in

  (* interpose on the public name: one namespace replace *)
  (match Interpose.attach api ~path:"/services/netdrv" ~agent with
  | Ok old -> say "interposed on /services/netdrv (was %s)" old.Instance.class_name
  | Error e -> failwith e);

  (* traffic: some receives from the wire, some transmits from the stack *)
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"bind_port"
       [ Value.Int 80 ]);
  List.iter
    (fun payload -> Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:80 payload)))
    [ "GET /index"; "GET /style.css"; "GET /logo.png" ];
  Kernel.step k ~ticks:5 ();
  List.iter
    (fun n ->
      ignore
        (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"send"
           [ Value.Int 13; Value.Int 80; Value.Int 9;
             Value.Blob (Bytes.make (100 * n) 'r') ]))
    [ 1; 2; 3 ];
  Kernel.step k ~ticks:5 ();

  (* what did the monitor see? *)
  let monitor meth = Value.to_int (Invoke.call_exn ctx agent ~iface:"monitor" ~meth []) in
  say "monitor: %d calls through the device, %d blob bytes" (monitor "calls")
    (monitor "blob_bytes");
  List.iter (say "  logged: %s") (List.rev !log);

  (* receives were delivered normally... *)
  (match
     Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"recv" [ Value.Int 80 ]
   with
  | Value.List msgs -> say "stack delivered %d requests to port 80" (List.length msgs)
  | v -> failwith (Value.to_string v));
  (* ...and transmits reached the wire *)
  say "%d frames transmitted" (List.length (Nic.take_transmitted (Kernel.nic k)));

  (* note the asymmetry: the driver's rx path calls the *stack*, so only
     transmit traffic flows through the interposed device name; receives
     were observed as stack deliveries. To watch receives too, interpose
     on /services/stack: *)
  let rx_agent = Interpose.packet_monitor api kdom ~target:net.System.stack in
  (match Interpose.attach api ~path:"/services/stack" ~agent:rx_agent with
  | Ok _ -> ()
  | Error e -> failwith e);
  (* the driver re-binds its sink on the next delivery only if it has not
     cached the instance; ours caches, so re-attach explicitly *)
  ignore
    (Invoke.call_exn ctx net.System.driver ~iface:"netdev" ~meth:"attach"
       [ Value.Str "/services/stack" ]);
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dst:42 ~dport:80 "POST /"));
  Kernel.step k ~ticks:3 ();
  say "rx monitor saw %d stack calls"
    (Value.to_int (Invoke.call_exn ctx rx_agent ~iface:"monitor" ~meth:"calls" []));
  say "netmon done"
