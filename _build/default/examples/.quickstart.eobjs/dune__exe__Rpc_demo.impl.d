examples/rpc_demo.ml: Bytes Domain Int32 Invoke Kernel List Oerror Paramecium Printf Rpc Scheduler System Value
