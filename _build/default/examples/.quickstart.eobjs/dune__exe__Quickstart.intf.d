examples/quickstart.mli:
