examples/netmon.mli:
