examples/parallel.ml: Clock Domain Events Kernel Machine Mmu Paramecium Printf Prng Scheduler Sync System Vmem
