examples/fileserver.mli:
