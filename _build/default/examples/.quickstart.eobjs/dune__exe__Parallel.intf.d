examples/parallel.mli:
