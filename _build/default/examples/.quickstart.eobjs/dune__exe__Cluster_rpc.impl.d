examples/cluster_rpc.ml: Api Bytes Clock Cluster Domain Images Int32 Invoke Kernel List Loader Paramecium Path Pm_obj Printf Rpc Scheduler String System Value
