examples/cluster_rpc.mli:
