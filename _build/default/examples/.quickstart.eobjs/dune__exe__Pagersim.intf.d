examples/pagersim.mli:
