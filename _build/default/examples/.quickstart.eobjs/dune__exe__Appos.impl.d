examples/appos.ml: Allocator Api Bytes Call_ctx Char Clock Composite Domain Iface Images Instance Interpose Invoke Kernel Oerror Paramecium Path Printf Stack System Value Vtype
