examples/pagersim.ml: Clock Domain Invoke Kernel Machine Pager Paramecium Printf System Value
