examples/netmon.ml: Bytes Instance Interpose Invoke Kernel List Nic Paramecium Printf Stack String System Value Wire
