examples/fileserver.ml: Bytes Disk Domain Fun Invoke Kernel List Oerror Paramecium Printf Result Rpc Scheduler Simplefs String System Value
