examples/quickstart.ml: Api Authority Certsvc Clock Domain Hashtbl Iface Images Instance Invoke Kernel List Oerror Paramecium Principal Printf System Value Vtype
