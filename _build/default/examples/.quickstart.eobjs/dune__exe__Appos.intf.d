examples/appos.mli:
