(* RPC over the protocol stack, with interface evolution.

   A calculator server and a client talk through the full network path
   (stack -> driver -> NIC in loopback -> driver -> stack). Afterwards the
   client object grows a measurement interface — "adding a measurement
   interface to an RPC object does not require recompilation of its
   users, since the RPC interface itself does not change" (§2).

   Run with: dune exec examples/rpc_demo.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* wire helpers for the calculator protocol: pairs of 32-bit ints *)
let enc2 a b =
  let bts = Bytes.create 8 in
  Bytes.set_int32_be bts 0 (Int32.of_int a);
  Bytes.set_int32_be bts 4 (Int32.of_int b);
  bts

let dec1 b = Int32.to_int (Bytes.get_int32_be b 0)

let enc1 a =
  let bts = Bytes.create 4 in
  Bytes.set_int32_be bts 0 (Int32.of_int a);
  bts

let () =
  let sys = System.create ~seed:21 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  ignore
    (System.setup_networking sys ~placement:System.Certified ~addr:42 ~loopback:true ());

  let procedures =
    [
      ("add", fun _ctx b -> Ok (enc1 (dec1 b + Int32.to_int (Bytes.get_int32_be b 4))));
      ("mul", fun _ctx b -> Ok (enc1 (dec1 b * Int32.to_int (Bytes.get_int32_be b 4))));
      ("div", fun _ctx b ->
          let d = Int32.to_int (Bytes.get_int32_be b 4) in
          if d = 0 then Error "division by zero" else Ok (enc1 (dec1 b / d)));
    ]
  in
  let server =
    Rpc.create_server api kdom ~stack_path:"/services/stack" ~port:100 ~procedures
  in
  let client =
    Rpc.create_client api kdom ~stack_path:"/services/stack" ~port:200 ~server:(42, 100)
      ()
  in
  Rpc.add_measurement client;

  let ctx = Kernel.ctx k kdom in
  let sched = Kernel.sched k in

  (* server pump: a long-lived thread polling the request port *)
  ignore
    (Scheduler.spawn sched ~name:"rpc-server" ~domain:kdom.Domain.id (fun () ->
         for _ = 1 to 2_000 do
           ignore (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));

  (* client thread: a few calls, including a failing one *)
  let outputs = ref [] in
  ignore
    (Scheduler.spawn sched ~name:"rpc-client" ~domain:kdom.Domain.id (fun () ->
         let call name a b =
           match
             Invoke.call ctx client ~iface:"rpc" ~meth:"call"
               [ Value.Str name; Value.Blob (enc2 a b) ]
           with
           | Ok (Value.Blob r) -> Printf.sprintf "%s(%d,%d) = %d" name a b (dec1 r)
           | Ok v -> Printf.sprintf "%s: odd reply %s" name (Value.to_string v)
           | Error e -> Printf.sprintf "%s(%d,%d) -> %s" name a b (Oerror.to_string e)
         in
         outputs := call "add" 2 40 :: !outputs;
         outputs := call "mul" 6 7 :: !outputs;
         outputs := call "div" 84 2 :: !outputs;
         outputs := call "div" 1 0 :: !outputs));

  Kernel.step k ~ticks:400 ();
  List.iter (say "  %s") (List.rev !outputs);

  (* the measurement interface, added after the fact *)
  let measure meth = Value.to_int (Invoke.call_exn ctx client ~iface:"rpc.measure" ~meth []) in
  say "client measurements: %d successful calls, %d cycles total (%.0f cycles/call)"
    (measure "calls") (measure "cycles")
    (float_of_int (measure "cycles") /. float_of_int (max 1 (measure "calls")));
  let reqs = Value.to_int (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"requests" []) in
  let fails = Value.to_int (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"failures" []) in
  say "server handled %d requests (%d application failures)" reqs fails;
  say "rpc_demo done"
