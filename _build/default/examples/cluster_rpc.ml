(* Distributed RPC across two Paramecium nodes.

   Paramecium came out of the Amoeba group and was built for a parallel
   programming crowd spread across workstations. Here two independently
   booted kernels share a wire (and a certification authority — node B
   trusts certificates issued for node A's components and vice versa);
   a client thread on node A calls a word-count service on node B through
   both protocol stacks and the cross-wired NICs.

   Run with: dune exec examples/cluster_rpc.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  let cl = Cluster.create ~seed:5 () in
  let node_a = Cluster.node_a cl and node_b = Cluster.node_b cl in
  let ka = System.kernel node_a and kb = System.kernel node_b in
  let kdom_a = Kernel.kernel_domain ka and kdom_b = Kernel.kernel_domain kb in

  (* the same certificate admits a component on either node *)
  let image =
    Images.image ~name:"wordcount" ~size:4_096 ~author:"kernel-team" ~type_safe:true
      (fun api dom ->
        Pm_obj.Instance.create api.Api.registry ~class_name:"wordcount"
          ~domain:dom.Domain.id [])
  in
  let image, _ = Images.certify (System.authority node_a) ~now:0 image in
  Loader.publish (Kernel.loader kb) image;
  (match
     Loader.load (Kernel.loader kb) ~name:"wordcount" ~into:kdom_b
       ~at:(Path.of_string "/services/wordcount-code") ()
   with
  | Ok _ -> say "node B accepted a certificate issued in node A's domain"
  | Error e -> failwith (Loader.load_error_to_string e));

  (* RPC server on node B *)
  let words b =
    Bytes.to_string b |> String.split_on_char ' '
    |> List.filter (fun s -> s <> "")
    |> List.length
  in
  let server =
    Rpc.create_server (Kernel.api kb) kdom_b ~stack_path:"/services/stack" ~port:100
      ~procedures:
        [
          ("count", fun _ctx b ->
              let n = words b in
              let r = Bytes.create 4 in
              Bytes.set_int32_be r 0 (Int32.of_int n);
              Ok r);
        ]
  in
  let ctx_b = Kernel.ctx kb kdom_b in
  ignore
    (Scheduler.spawn (Kernel.sched kb) ~name:"server" ~domain:kdom_b.Domain.id
       (fun () ->
         for _ = 1 to 2_000 do
           ignore (Invoke.call_exn ctx_b server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));

  (* RPC client on node A *)
  let client =
    Rpc.create_client (Kernel.api ka) kdom_a ~stack_path:"/services/stack" ~port:200
      ~server:(Cluster.addr_b, 100) ()
  in
  let ctx_a = Kernel.ctx ka kdom_a in
  let replies = ref [] in
  ignore
    (Scheduler.spawn (Kernel.sched ka) ~name:"client" ~domain:kdom_a.Domain.id
       (fun () ->
         List.iter
           (fun text ->
             match
               Invoke.call_exn ctx_a client ~iface:"rpc" ~meth:"call"
                 [ Value.Str "count"; Value.Blob (Bytes.of_string text) ]
             with
             | Value.Blob r ->
               replies :=
                 Printf.sprintf "%S -> %ld words" text (Bytes.get_int32_be r 0)
                 :: !replies
             | v -> failwith (Value.to_string v))
           [ "an extensible object based kernel";
             "determining which components reside in the kernel is up to the user";
             "trust and sharing" ]));

  (* drive both nodes and the wire until the client finishes *)
  Cluster.step cl ~ticks:600 ();
  List.iter (say "  %s") (List.rev !replies);
  assert (List.length !replies = 3);
  say "frames across the wire: %d" (Cluster.frames_delivered cl);
  say "node A cycles: %d, node B cycles: %d"
    (Clock.now (Kernel.clock ka))
    (Clock.now (Kernel.clock kb));
  say "cluster_rpc done"
