(* Parallel programming support — the application area Paramecium was
   aimed at ("a prototype kernel ... intended to provide support for
   parallel programming", §1, building on the active-message work the
   authors cite).

   A master partitions a dot-product across worker threads in separate
   protection domains. Workers read their slice from *shared* pages
   (allocated Shared, mapped read-only into each worker), compute, then
   deliver their partial result with an active message: a software trap
   whose handler runs as a pop-up thread in the master's domain and folds
   the result into the accumulator. The handlers never block, so every
   pop-up completes on the proto-thread fast path — the cheap case the
   design optimizes for — while the master sleeps on an ivar that the
   last handler fills.

   Run with: dune exec examples/parallel.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

let vector_len = 1024
let workers = 4
let result_trap = 9 (* software trap vector used as the active-message door *)

let () =
  let sys = System.create ~seed:3 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let machine = Kernel.machine k in
  let vmem = Kernel.vmem k in
  let sched = Kernel.sched k in

  (* -- shared data ---------------------------------------------------- *)
  (* two vectors of 32-bit ints in shared pages, written by the master *)
  let bytes_needed = vector_len * 4 * 2 in
  let pages = (bytes_needed + Machine.page_size machine - 1) / Machine.page_size machine in
  let base = Vmem.alloc_pages vmem kdom ~count:pages ~sharing:Vmem.Shared in
  let addr_a i = base + (i * 4) in
  let addr_b i = base + (vector_len * 4) + (i * 4) in
  let rng = Prng.create ~seed:99 in
  let expected = ref 0 in
  for idx = 0 to vector_len - 1 do
    let a = Prng.int rng 100 and b = Prng.int rng 100 in
    Machine.write32 machine kdom.Domain.id (addr_a idx) a;
    Machine.write32 machine kdom.Domain.id (addr_b idx) b;
    expected := !expected + (a * b)
  done;
  say "master wrote 2x%d ints into %d shared pages (expected dot=%d)" vector_len pages
    !expected;

  (* -- active-message door -------------------------------------------- *)
  let accumulator = ref 0 in
  let arrived = ref 0 in
  let all_done = Sync.Ivar.create () in
  ignore
    (Events.register_popup (Kernel.events k) (Events.Trap result_trap) ~domain:kdom
       ~sched ~priority:0 (fun partial ->
         (* pop-up thread in the master's domain: fold the partial in *)
         accumulator := !accumulator + partial;
         incr arrived;
         if !arrived = workers then Sync.Ivar.fill all_done !accumulator));

  (* -- workers ---------------------------------------------------------- *)
  let slice = vector_len / workers in
  for w = 0 to workers - 1 do
    let wdom = Kernel.create_domain k ~name:(Printf.sprintf "worker%d" w) () in
    (* map the shared vectors read-only into the worker's context *)
    let wbase =
      Vmem.map_shared vmem ~from_dom:kdom ~vaddr:base ~count:pages ~into:wdom
        ~prot:Mmu.Read_only
    in
    let waddr_a i = wbase + (i * 4) in
    let waddr_b i = wbase + (vector_len * 4) + (i * 4) in
    ignore
      (Scheduler.spawn sched ~name:(Printf.sprintf "worker%d" w) ~domain:wdom.Domain.id
         (fun () ->
           let lo = w * slice in
           let hi = lo + slice - 1 in
           let partial = ref 0 in
           for idx = lo to hi do
             let a = Machine.read32 machine wdom.Domain.id (waddr_a idx) in
             let b = Machine.read32 machine wdom.Domain.id (waddr_b idx) in
             partial := !partial + (a * b);
             (* cooperate occasionally so workers interleave *)
             if idx mod 128 = 0 then Scheduler.yield ()
           done;
           (* active message back to the master *)
           ignore (Machine.raise_trap machine result_trap !partial)))
  done;

  (* -- master waits ------------------------------------------------------ *)
  let result = ref None in
  ignore
    (Scheduler.spawn sched ~name:"master" ~domain:kdom.Domain.id (fun () ->
         result := Some (Sync.Ivar.read all_done)));
  ignore (Kernel.run k);

  (match !result with
  | Some dot when dot = !expected -> say "dot product = %d  (matches)" dot
  | Some dot -> failwith (Printf.sprintf "wrong result %d, expected %d" dot !expected)
  | None -> failwith "master never woke");

  let st what = Scheduler.stats sched what in
  say "threads: %d spawned, %d pop-ups (%d fast-path, %d promoted), %d switches"
    (st `Spawned) (st `Popups) (st `Popup_fast) (st `Promotions) (st `Switches);
  say "context switches: %d; cycles: %d"
    (Clock.counter (Kernel.clock k) "context_switch")
    (Clock.now (Kernel.clock k));
  say "parallel done"
