(* A file server from toolbox parts.

   Composition in practice: the inode filesystem (over the simulated
   disk) is served through the RPC component over the protocol stack and
   the loopback NIC. Nothing here is new code — it is the toolbox
   assembled into an application-specific service, which is the point of
   the architecture.

   Run with: dune exec examples/fileserver.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* request payloads: "verb path [data]" in plain bytes *)
let split2 b =
  let s = Bytes.to_string b in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let () =
  let sys = System.create ~seed:17 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  ignore
    (System.setup_networking sys ~placement:System.Certified ~addr:42 ~loopback:true ());

  (* the filesystem, formatted on the kernel's disk *)
  let fs = Simplefs.format api ~disk:(Kernel.disk k) in

  let lift = function
    | Ok v -> Ok v
    | Error e -> Error (Simplefs.error_to_string e)
  in
  let procedures =
    [
      ("put", fun ctx b ->
          let path, data = split2 b in
          Result.bind (lift (Simplefs.create fs ctx path)) (fun () ->
              Result.map
                (fun n -> Bytes.of_string (string_of_int n))
                (lift (Simplefs.write fs ctx path ~offset:0 (Bytes.of_string data)))));
      ("get", fun ctx b ->
          let path, _ = split2 b in
          Result.map Fun.id (lift (Simplefs.read fs ctx path ~offset:0 ~len:65536)));
      ("ls", fun ctx b ->
          let path, _ = split2 b in
          Result.map
            (fun names -> Bytes.of_string (String.concat "\n" names))
            (lift (Simplefs.list fs ctx path)));
      ("rm", fun ctx b ->
          let path, _ = split2 b in
          Result.map (fun () -> Bytes.empty) (lift (Simplefs.remove fs ctx path)));
    ]
  in
  let server =
    Rpc.create_server api kdom ~stack_path:"/services/stack" ~port:2049 ~procedures
  in
  let client =
    Rpc.create_client api kdom ~stack_path:"/services/stack" ~port:1024
      ~server:(42, 2049) ()
  in
  let ctx = Kernel.ctx k kdom in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"nfsd" ~domain:kdom.Domain.id (fun () ->
         for _ = 1 to 3_000 do
           ignore (Invoke.call_exn ctx server ~iface:"rpc.server" ~meth:"poll" []);
           Scheduler.yield ()
         done));

  let log = ref [] in
  ignore
    (Scheduler.spawn (Kernel.sched k) ~name:"client" ~domain:kdom.Domain.id (fun () ->
         let call verb arg =
           match
             Invoke.call ctx client ~iface:"rpc" ~meth:"call"
               [ Value.Str verb; Value.Blob (Bytes.of_string arg) ]
           with
           | Ok (Value.Blob b) -> Printf.sprintf "%s %s -> %S" verb arg (Bytes.to_string b)
           | Ok v -> Printf.sprintf "%s %s -> %s" verb arg (Value.to_string v)
           | Error e -> Printf.sprintf "%s %s -> error: %s" verb arg (Oerror.to_string e)
         in
         log := call "put" "/motd welcome to paramecium" :: !log;
         log := call "put" "/readme the toolbox approach" :: !log;
         log := call "ls" "/" :: !log;
         log := call "get" "/motd" :: !log;
         log := call "rm" "/readme" :: !log;
         log := call "ls" "/" :: !log;
         log := call "get" "/readme" :: !log));
  Kernel.step k ~ticks:800 ();
  List.iter (say "  %s") (List.rev !log);
  assert (List.length !log = 7);

  (* the data is really on the disk: a fresh mount sees it *)
  let fs2 = Simplefs.mount api ~disk:(Kernel.disk k) in
  (match Simplefs.read fs2 ctx "/motd" ~offset:0 ~len:100 with
  | Ok b -> say "after remount, /motd = %S" (Bytes.to_string b)
  | Error e -> failwith (Simplefs.error_to_string e));
  say "fileserver done (disk: %d reads, %d writes)"
    (Disk.reads (Kernel.disk k))
    (Disk.writes (Kernel.disk k))
