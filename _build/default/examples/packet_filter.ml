(* Downloading application code into the shared network device — the
   paper's §1 motivating example, end to end with real code:

   1. An application writes a packet filter in the filter language.
   2. The trusted compiler (Filterc) compiles it to bytecode with
      compiled-in bounds checks, and — acting as a certification
      delegate, the SPIN arrangement from §5 — signs the object code.
   3. The kernel validates the certificate (digest matches the exact
      bytecode) and installs the filter raw into the in-kernel stack.
   4. A rogue filter with no certificate can only run SFI-rewritten; a
      hand-crafted hostile one demonstrates why.

   Run with: dune exec examples/packet_filter.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

let make_packet ctx ~dport payload =
  let tp = Wire.Transport.build ctx ~sport:9 ~dport (Bytes.of_string payload) in
  let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
  Wire.Frame.build ctx ~dst:42 ~src:13 np

let () =
  (* the compiler keeps a build record; its certification policy accepts
     exactly what it compiled *)
  let compiled : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let sys = System.create ~seed:23 () in
  (* enlist the filter compiler as an additional certification delegate *)
  ignore
    (Authority.add_delegate (System.authority sys) (System.rng sys)
       ~name:"filter-compiler"
       ~policy:(Filterc.certifying_policy ~compiled)
       ~latency:Policies.latency_compiler ());
  List.iter
    (Certsvc.add_grant (Kernel.certification (System.kernel sys)))
    (Authority.grants (System.authority sys));
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let net = System.setup_networking sys ~placement:System.Certified ~addr:42 () in
  let ctx = Kernel.ctx k kdom in
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"bind_port"
       [ Value.Int 80 ]);

  (* -- 1+2: write, compile, certify ----------------------------------- *)
  let src = "byte[18] == 0 && byte[19] == 80 && len < 600" in
  let code =
    match Filterc.compile_string src with
    | Ok p ->
      say "compiled %S -> %d instructions" src (Vm.instr_count p);
      Vm.encode p
    | Error e -> failwith e
  in
  Hashtbl.replace compiled "http-filter" ();
  let outcome =
    Authority.certify (System.authority sys)
      (Meta.make ~name:"http-filter" ~size:(String.length code) ())
      ~code ~now:0
  in
  let cert = Option.get outcome.Authority.certificate in
  say "certified by %s" cert.Certificate.signer.Principal.name;

  (* -- 3: kernel-side validation, then install raw --------------------- *)
  (match Certsvc.validate (Kernel.certification k) cert ~code with
  | Validator.Valid _ -> say "kernel validated the filter's object code"
  | Validator.Invalid f -> failwith (Validator.failure_to_string f));
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string code); Value.Bool false ]);

  (* traffic: two to port 80 (one oversized), one to port 23 *)
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dport:80 "GET /"));
  Nic.inject (Kernel.nic k)
    (Bytes.to_string (make_packet ctx ~dport:80 (String.make 800 'x')));
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dport:23 "telnet"));
  Kernel.step k ~ticks:5 ();
  (match Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"stats" [] with
  | Value.List [ Value.Int ok; Value.Int _; Value.Int _; Value.Int filtered ] ->
    say "stack accepted %d packet(s); the filter discarded %d in the driver path" ok
      filtered
  | v -> failwith (Value.to_string v));

  (* -- 4: tampering and hostility ---------------------------------------- *)
  (* flip one byte of the certified object code: validation fails *)
  let tampered = Codegen.tamper code ~at:8 in
  (match Certsvc.validate (Kernel.certification k) cert ~code:tampered with
  | Validator.Invalid Validator.Digest_mismatch ->
    say "tampered object code refused: digest mismatch"
  | _ -> failwith "tampering not caught!");

  (* a hand-written hostile filter: tries to read kernel memory *)
  let evil = [| Vm.Const (2, 8_000_000); Vm.Load8 (3, 2, 0); Vm.Ret 3 |] in
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string (Vm.encode evil)); Value.Bool false ]);
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dport:80 "probe"));
  Kernel.step k ~ticks:3 ();
  say "hostile raw filter: %d wild access(es) detected — the risk certification exists to prevent"
    (Clock.counter (Kernel.clock k) "vm_wild_access");

  (* the same hostile code, SFI-rewritten, is contained *)
  ignore
    (Invoke.call_exn ctx net.System.stack ~iface:"stack" ~meth:"set_filter"
       [ Value.Blob (Bytes.of_string (Vm.encode evil)); Value.Bool true ]);
  Nic.inject (Kernel.nic k) (Bytes.to_string (make_packet ctx ~dport:80 "probe2"));
  Kernel.step k ~ticks:3 ();
  say "same code SFI-rewritten: still %d wild access(es) — contained, at a per-access price"
    (Clock.counter (Kernel.clock k) "vm_wild_access");
  say "packet_filter done"
