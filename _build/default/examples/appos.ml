(* Building an application-specific operating system — the paper's whole
   point: "a highly dynamic kernel, which enables us to build application
   specific operating systems without the loss of generality."

   Three reconfigurations, none of which touch kernel source:

   1. A real-time-ish application replaces the stack's transport layer
      with a zero-checksum variant (it trusts its links and wants the
      cycles back) — dynamic composition surgery.
   2. An untrusted analytics component is admitted into the kernel via
      the sandbox escape; the same component certified by the
      administrator runs check-free. The cycle counters show the price.
   3. A debugging domain is created whose name-space view overrides the
      allocator with an instrumented one; other domains are unaffected.

   Run with: dune exec examples/appos.exe *)

open Paramecium

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* transport layer without payload checksums: cheaper, weaker *)
let fast_transport api (dom : Domain.t) =
  let encode ctx = function
    | [ Value.Int sport; Value.Int dport; Value.Blob payload ] ->
      let b = Bytes.create (8 + Bytes.length payload) in
      Bytes.set b 0 (Char.chr (sport lsr 8));
      Bytes.set b 1 (Char.chr (sport land 0xff));
      Bytes.set b 2 (Char.chr (dport lsr 8));
      Bytes.set b 3 (Char.chr (dport land 0xff));
      Bytes.set b 4 (Char.chr (Bytes.length payload lsr 8));
      Bytes.set b 5 (Char.chr (Bytes.length payload land 0xff));
      (* checksum field zero: "trust the link" *)
      Bytes.set b 6 '\000';
      Bytes.set b 7 '\000';
      Bytes.blit payload 0 b 8 (Bytes.length payload);
      (* header-only cost: this is the point of the replacement *)
      Call_ctx.access ctx 8;
      Ok (Value.Blob b)
    | _ -> Error (Oerror.Type_error "encode(sport, dport, payload)")
  in
  let decode ctx = function
    | [ Value.Blob raw ] when Bytes.length raw >= 8 ->
      Call_ctx.access ctx 8;
      let g i = Char.code (Bytes.get raw i) in
      let sport = (g 0 lsl 8) lor g 1 and dport = (g 2 lsl 8) lor g 3 in
      let payload = Bytes.sub raw 8 (Bytes.length raw - 8) in
      Ok (Value.Pair (Value.Pair (Value.Int sport, Value.Int dport), Value.Blob payload))
    | [ Value.Blob _ ] -> Error (Oerror.Fault "fast-transport: truncated")
    | _ -> Error (Oerror.Type_error "decode(blob)")
  in
  let iface =
    Iface.make ~name:"layer"
      [
        Iface.meth ~name:"encode" ~args:[ Vtype.Tint; Vtype.Tint; Vtype.Tblob ]
          ~ret:Vtype.Tblob encode;
        Iface.meth ~name:"decode" ~args:[ Vtype.Tblob ]
          ~ret:(Vtype.Tpair (Vtype.Tpair (Vtype.Tint, Vtype.Tint), Vtype.Tblob))
          decode;
      ]
  in
  Instance.create api.Api.registry ~class_name:"appos.fast_transport"
    ~domain:dom.Domain.id [ iface ]

(* a counting component used for the sandbox-vs-certified comparison *)
let analytics_construct (api : Api.t) (dom : Domain.t) =
  let iface =
    Iface.make ~name:"analytics"
      [
        Iface.meth ~name:"scan" ~args:[ Vtype.Tblob ] ~ret:Vtype.Tint
          (fun ctx -> function
            | [ Value.Blob b ] ->
              (* touch every byte: exactly what the sandbox taxes *)
              Call_ctx.access ctx (Bytes.length b);
              let hits = ref 0 in
              Bytes.iter (fun c -> if c = 'x' then incr hits) b;
              Ok (Value.Int !hits)
            | _ -> Error (Oerror.Type_error "scan(blob)"));
      ]
  in
  Instance.create api.Api.registry ~class_name:"appos.analytics" ~domain:dom.Domain.id
    [ iface ]

let () =
  let sys = System.create ~seed:11 () in
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let api = Kernel.api k in
  let ctx = Kernel.ctx k kdom in
  let clock = Kernel.clock k in

  (* ---- 1. swap the transport layer at run time ----------------------- *)
  say "== 1. replacing the transport layer of a running stack ==";
  ignore (System.setup_networking sys ~placement:System.Certified ~addr:42 ());
  let comp = Stack.create api kdom ~addr:50 ~driver_path:"/services/netdrv" in
  let stack = Composite.instance comp in
  let send payload =
    snd
      (Clock.measure clock (fun () ->
           ignore
             (Invoke.call_exn ctx stack ~iface:"stack" ~meth:"send"
                [ Value.Int 60; Value.Int 1; Value.Int 2; Value.Blob payload ])))
  in
  let payload = Bytes.make 1000 'd' in
  let with_checksums = send payload in
  Stack.replace_layer comp "transport" (fast_transport api kdom);
  let without_checksums = send payload in
  say "send 1000B: %d cycles with payload checksums, %d without (saved %.0f%%)"
    with_checksums without_checksums
    ((1. -. (float_of_int without_checksums /. float_of_int with_checksums)) *. 100.);

  (* ---- 2. certified vs sandboxed admission --------------------------- *)
  say "";
  say "== 2. the price of software protection ==";
  let image placement name =
    let img =
      Images.image ~name ~size:4_096 ~author:"kernel-team" analytics_construct
    in
    System.install_exn sys img ~placement ~at:("/services/" ^ name)
  in
  (* author kernel-team: the administrator delegate certifies it *)
  let certified = image System.Certified "analytics-cert" in
  let sandboxed = image System.Sandboxed "analytics-sfi" in
  let blob = Value.Blob (Bytes.make 2000 'x') in
  let scan inst =
    snd
      (Clock.measure clock (fun () ->
           ignore (Invoke.call_exn ctx inst ~iface:"analytics" ~meth:"scan" [ blob ])))
  in
  let c1 = scan certified and c2 = scan sandboxed in
  say "scan 2000B in-kernel: certified %d cycles, sandboxed %d cycles (%.2fx)" c1 c2
    (float_of_int c2 /. float_of_int c1);
  say "sfi checks so far: %d" (Clock.counter clock "sfi_check");

  (* ---- 3. a debugging view through name-space overrides --------------- *)
  say "";
  say "== 3. per-domain reconfiguration with overrides ==";
  let shared_alloc = Allocator.create api kdom ~heap_pages:4 in
  Kernel.register_at k "/services/alloc" shared_alloc;
  let traced = Interpose.wrap api kdom ~target:shared_alloc () in
  let debug_dom =
    Kernel.create_domain k ~name:"debug"
      ~overrides:[ (Path.of_string "/services/alloc", Instance.handle traced) ]
      ()
  in
  let normal_dom = Kernel.create_domain k ~name:"normal" () in
  let use dom =
    let a = Kernel.bind k dom "/services/alloc" in
    let addr =
      Value.to_int
        (Invoke.call_exn (Kernel.ctx k dom) a ~iface:"allocator" ~meth:"alloc"
           [ Value.Int 128 ])
    in
    ignore
      (Invoke.call_exn (Kernel.ctx k dom) a ~iface:"allocator" ~meth:"free"
         [ Value.Int addr ])
  in
  use debug_dom;
  use normal_dom;
  say "debug domain's allocator calls observed: %s; other domains: unobserved"
    (Value.to_string (Invoke.call_exn ctx traced ~iface:"monitor" ~meth:"calls" []));
  say "appos done (total %d cycles)" (Clock.now clock)
