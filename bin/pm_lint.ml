(* pm_lint — assemble a demo composition and run the Pm_check
   composition linter over it.

   Exit status: 0 = clean, 1 = the linter reported errors, 2 = usage.

   [--seed non-superset|spsc|cross-cpu|store-order|store-dangling]
   first injects the named violation using raw primitives (dodging the
   load-time guards that normally prevent it), so `make lint` and CI
   can assert the linter actually catches what it claims to catch.

   [--json] prints the report as one line of JSON instead of prose —
   what CI parses into per-finding annotations. *)

open Paramecium

let usage =
  "usage: pm_lint [--seed non-superset|spsc|cross-cpu|store-order|store-dangling] \
   [--quiet] [--json]"

(* A deliberately-shrunken replacement installed with the raw directory
   primitive — exactly the hole Interpose.attach closes and the linter
   exists to catch after the fact. *)
let seed_non_superset sys =
  let k = System.kernel sys in
  let api = System.api sys in
  let kdom = Kernel.kernel_domain k in
  let impostor =
    Instance.create api.Api.registry ~class_name:"impostor"
      ~domain:kdom.Domain.id
      [ Iface.make ~name:"unrelated" [] ]
  in
  match
    Directory.replace (Kernel.directory k)
      (Path.of_string "/services/stack")
      impostor
  with
  | Ok _ -> ()
  | Error e -> failwith (Directory.bind_error_to_string e)

(* Feed one channel from two MMU contexts: the single-producer half of
   the SPSC contract, violated by hand. *)
let seed_spsc sys =
  let k = System.kernel sys in
  let kdom = Kernel.kernel_domain k in
  let udom = System.new_domain sys "rogue-producer" in
  let chan =
    Chan.create (Kernel.machine k) (Kernel.vmem k) ~name:"seeded-spsc"
      ~producer:kdom ()
  in
  ignore (Chan.accept chan ~into:udom);
  let mmu = Machine.mmu (Kernel.machine k) in
  let home = Mmu.current_context mmu in
  ignore (Chan.try_send chan (Bytes.of_string "one"));
  Mmu.switch_context mmu udom.Domain.id;
  ignore (Chan.try_send chan (Bytes.of_string "two"));
  Mmu.switch_context mmu home

(* Grow an SMP complex under the booted system, then pin a hand-wired
   ring's producer and consumer to different CPUs without turning its
   cache-line pricing on — the unaccounted coherence traffic the
   cross-cpu rule exists to catch. *)
let seed_cross_cpu sys =
  let k = System.kernel sys in
  let machine = Kernel.machine k in
  let cpx = Cpu.create machine ~cpus:2 in
  let kdom = Kernel.kernel_domain k in
  let udom = System.new_domain sys "far-consumer" in
  let chan =
    Chan.create machine (Kernel.vmem k) ~name:"seeded-cross-cpu" ~producer:kdom
      ()
  in
  ignore (Chan.accept chan ~into:udom);
  Cpu.pin cpx ~domain:kdom.Domain.id ~cpu:0;
  Cpu.pin cpx ~domain:udom.Domain.id ~cpu:1

(* Boot the storage stack, then wire a write-back cache directly above
   the append-only log — the storage inversion the store-order rule
   exists to catch. *)
let seed_store_order sys =
  ignore (System.setup_store sys ~placement:System.Certified ());
  let kdom = Kernel.kernel_domain (System.kernel sys) in
  ignore
    (Block_cache.create (System.api sys) kdom ~name:"bad-cache"
       ~lower:"/store/log0" ~capacity:4 ())

(* Revoke a bound component without the factory's detach protocol,
   leaving its /store endpoint dangling. *)
let seed_store_dangling sys =
  ignore (System.setup_store sys ~placement:System.Certified ());
  match
    Storereg.find ~machine:(Kernel.machine (System.kernel sys)) "cache0"
  with
  | Some e -> Instance.revoke e.Storereg.instance
  | None -> failwith "pm_lint: cache0 not registered"

(* The demo composition: networking in the kernel, a monitoring
   interposer on the driver (a proper superset, so attach admits it),
   and the driver->stack receive path over a shared-memory channel. *)
let build_demo () =
  let sys = System.create () in
  let k = System.kernel sys in
  let net =
    System.setup_networking sys ~placement:System.Certified ~addr:42
      ~loopback:true ()
  in
  let kdom = Kernel.kernel_domain k in
  let agent =
    Interpose.packet_monitor (System.api sys) kdom ~target:net.System.driver
  in
  (match Interpose.attach (System.api sys) ~path:"/services/netdrv" ~agent with
  | Ok _ -> ()
  | Error e -> failwith ("pm_lint: attach failed: " ^ e));
  ignore (System.channel_rx sys net ());
  Kernel.step k ~ticks:4 ();
  sys

let () =
  let seed = ref None and quiet = ref false and json = ref false in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      seed := Some v;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | a :: _ ->
      prerr_endline ("pm_lint: unknown argument " ^ a);
      prerr_endline usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sys = build_demo () in
  (match !seed with
  | None -> ()
  | Some "non-superset" -> seed_non_superset sys
  | Some "spsc" -> seed_spsc sys
  | Some "cross-cpu" -> seed_cross_cpu sys
  | Some "store-order" -> seed_store_order sys
  | Some "store-dangling" -> seed_store_dangling sys
  | Some s ->
    prerr_endline ("pm_lint: unknown seed " ^ s);
    prerr_endline usage;
    exit 2);
  let report = Check_svc.run (System.check sys) in
  if !json then print_endline (Lint.report_to_json report)
  else if not !quiet then print_endline (Lint.report_to_string report);
  exit (match Lint.errors report with [] -> 0 | _ -> 1)
