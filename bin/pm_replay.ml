(* pm_replay — record a deterministic run of a named scenario, replay a
   recording and assert the journal and /stats snapshot reproduce byte
   for byte, and optionally lint the recorded history.

   Exit status: 0 = replay matched (and history linted clean when
   --lint), 1 = divergence or lint errors, 2 = usage.

   With no mode flag the named scenario is self-checked: recorded once,
   replayed immediately, and the two captures compared — the
   determinism contract `make replay-smoke` and CI assert. *)

open Paramecium

let usage =
  "usage: pm_replay [scenario] [--list] [--record FILE] [--replay FILE] \
   [--trace] [--bisect] [--lint] [--quiet]"

let say quiet fmt =
  Printf.ksprintf (fun s -> if not quiet then print_endline s) fmt

let die code msg =
  prerr_endline ("pm_replay: " ^ msg);
  if code = 2 then prerr_endline usage;
  exit code

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error e -> die 2 e

let write_file path s =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s)
  with Sys_error e -> die 2 e

(* the page-hygiene pass over a recording's imported event stream: the
   history-only lint mode, no live system needed *)
let lint_recording quiet (r : Replay.recording) =
  match Journal.import r.Replay.journal with
  | Error e -> die 1 ("recorded journal unreadable: " ^ e)
  | Ok events ->
    let findings = Lint.history events in
    List.iter
      (fun f -> if not quiet then print_endline (Lint.finding_to_string f))
      findings;
    (match findings with
    | [] ->
      say quiet "history lint: clean (%d events)" (List.length events);
      true
    | fs ->
      say quiet "history lint: %d finding(s)" (List.length fs);
      false)

let () =
  let scenario = ref None in
  let record_to = ref None in
  let replay_from = ref None in
  let lint = ref false in
  let bisect = ref false in
  let trace = ref false in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--list" :: _ ->
      List.iter
        (fun (name, desc) -> Printf.printf "%-10s %s\n" name desc)
        Replay.scenarios;
      exit 0
    | "--record" :: file :: rest ->
      record_to := Some file;
      parse rest
    | "--replay" :: file :: rest ->
      replay_from := Some file;
      parse rest
    | "--lint" :: rest ->
      lint := true;
      parse rest
    | "--bisect" :: rest ->
      bisect := true;
      parse rest
    | "--trace" :: rest ->
      trace := true;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' && !scenario = None ->
      scenario := Some a;
      parse rest
    | a :: _ -> die 2 ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quiet = !quiet in
  (* causal tracing at record time: requests get rids, span/note events
     land in the history, and the recording self-identifies as traced *)
  if !trace then Trace.set_enabled true;
  let ok = ref true in
  let recording =
    match !replay_from with
    | Some file ->
      (match Replay.recording_of_string (read_file file) with
      | Ok r ->
        (match !scenario with
        | Some s when s <> r.Replay.scenario ->
          die 2
            (Printf.sprintf "recording %s holds scenario %S, not %S" file
               r.Replay.scenario s)
        | _ -> ());
        r
      | Error e -> die 2 (file ^ ": " ^ e))
    | None ->
      let name = Option.value !scenario ~default:"compose" in
      (match Replay.record name with
      | Ok r -> r
      | Error e -> die 2 e)
  in
  (match !record_to with
  | Some file ->
    write_file file (Replay.recording_to_string recording);
    say quiet "recorded scenario %s to %s" recording.Replay.scenario file
  | None -> ());
  (* the core check: re-run the scenario, demand byte identity *)
  (match Replay.replay recording with
  | Ok () ->
    say quiet "replay of %s: journal and /stats reproduced byte-identically"
      recording.Replay.scenario
  | Error e ->
    ok := false;
    if not quiet then print_endline ("replay of " ^ recording.Replay.scenario ^ ": " ^ e));
  (* narrow a divergence to its first bad event on the cycle axis *)
  if !bisect then (
    match Replay.bisect recording with
    | Ok report -> if not quiet then print_endline report
    | Error e ->
      ok := false;
      if not quiet then print_endline ("bisect: " ^ e));
  if !lint then if not (lint_recording quiet recording) then ok := false;
  exit (if !ok then 0 else 1)
