(* Command-line driver: boot configured Paramecium systems and poke at
   them — namespace listing, packet workloads with cycle accounting, and
   certification dry-runs.

   dune exec bin/paramecium_demo.exe -- --help *)

open Paramecium
open Cmdliner

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* --- shared options ---------------------------------------------------- *)

let seed_t =
  Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let cpus_t =
  Arg.(
    value & opt int 1
    & info [ "cpus" ] ~docv:"N"
        ~doc:
          "Simulated CPUs. $(b,1) (the default) is the uniprocessor and \
           behaves byte-identically to builds without SMP; higher counts boot \
           a Pm_cpu complex with per-CPU clocks and schedulers.")

let create_system ~seed ~cpus = System.create ~seed ~cpus ()

let placement_t =
  let placement_conv =
    Arg.enum [ ("certified", `Certified); ("sandboxed", `Sandboxed); ("user", `User) ]
  in
  Arg.(
    value
    & opt placement_conv `Certified
    & info [ "placement" ] ~docv:"PLACEMENT"
        ~doc:"Protocol-stack placement: $(b,certified), $(b,sandboxed) or $(b,user).")

let networking sys placement =
  match placement with
  | `Certified -> System.setup_networking sys ~placement:System.Certified ~addr:42 ()
  | `Sandboxed -> System.setup_networking sys ~placement:System.Sandboxed ~addr:42 ()
  | `User ->
    let dom = System.new_domain sys "netuser" in
    System.setup_networking sys ~placement:(System.User dom) ~addr:42 ()

(* --- info --------------------------------------------------------------- *)

let info_cmd =
  let run seed cpus =
    let sys = create_system ~seed ~cpus in
    let k = System.kernel sys in
    say "Paramecium system";
    (match Cpu.find ~machine:(Kernel.machine k) with
    | Some cpx -> say "  cpus: %d" (Cpu.count cpx)
    | None -> say "  cpus: 1 (uniprocessor)");
    say "  authority: %s" (Principal.id (Authority.ca (System.authority sys)));
    say "  delegates:";
    List.iter
      (fun (d : Authority.delegate) ->
        say "    %-18s latency %d cycles" d.Authority.principal.Principal.name
          d.Authority.latency)
      (Authority.delegates (System.authority sys));
    say "  devices:";
    List.iter
      (fun (name, base, regs) -> say "    %-10s io 0x%08x, %d registers" name base regs)
      (Machine.devices (Kernel.machine k));
    say "  domains:";
    List.iter
      (fun d -> say "    %s" (Format.asprintf "%a" Domain.pp d))
      (Kernel.domains k);
    say "  physical memory: %d/%d frames free"
      (Physmem.free_frames (Machine.phys (Kernel.machine k)))
      (Physmem.total_frames (Machine.phys (Kernel.machine k)))
  in
  Cmd.v (Cmd.info "info" ~doc:"Boot a system and describe it.")
    Term.(const run $ seed_t $ cpus_t)

(* --- ls ------------------------------------------------------------------- *)

let ls_cmd =
  let run seed cpus placement =
    let sys = create_system ~seed ~cpus in
    ignore (networking sys placement);
    let k = System.kernel sys in
    let ns = Directory.namespace (Kernel.directory k) in
    Namespace.iter ns (fun path handle ->
        let cls =
          match Directory.resolve_handle (Kernel.directory k) handle with
          | Some inst ->
            Printf.sprintf "%s  [%s]" inst.Instance.class_name
              (String.concat ", " (Instance.interface_names inst))
          | None -> "(dangling)"
        in
        say "%-28s #%-3d %s" (Path.to_string path) handle cls)
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List the instance name space of a booted system.")
    Term.(const run $ seed_t $ cpus_t $ placement_t)

(* --- packets ---------------------------------------------------------------- *)

let packets_cmd =
  let count_t =
    Arg.(value & opt int 20 & info [ "n"; "count" ] ~docv:"N" ~doc:"Packets to push.")
  in
  let size_t =
    Arg.(value & opt int 256 & info [ "size" ] ~docv:"BYTES" ~doc:"Payload size.")
  in
  let trace_t =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Enable kernel-wide tracing, interpose a trace agent on \
             $(b,/shared/network), and print the span tree at exit.")
  in
  let stats_t =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Enable per-domain accounting and print the $(b,/stats) snapshot \
             plus the flight-recorder dump at exit (read through \
             $(b,/stats/kernel) like any client would).")
  in
  let net_chan_t =
    Arg.(
      value & flag
      & info [ "net-chan" ]
          ~doc:
            "Carry the workload over the channel-backed data path (Pm_net): \
             deliveries land on a per-port ring instead of the mailbox, and \
             each one is echoed back through the shared MPSC transmit group.")
  in
  let run seed cpus placement n size trace stats net_chan =
    let sys = create_system ~seed ~cpus in
    let k = System.kernel sys in
    let net = networking sys placement in
    let kdom = Kernel.kernel_domain k in
    let consume = net.System.stack_domain in
    let tsvc = Kernel.tracesvc k in
    if stats then Obs.enable (Clock.obs (Kernel.clock k));
    if trace then begin
      Obs.enable (Clock.obs (Kernel.clock k));
      match Tracesvc.interpose tsvc "/shared/network" with
      | Ok _ -> ()
      | Error e -> say "trace interposer: %s" e
    end;
    let ring =
      if net_chan then begin
        let nsc, _svc = System.channel_net sys net () in
        let app = System.new_domain sys "app" in
        match Netstack_chan.bind nsc ~port:7 ~owner:app ~mode:Chan.Poll () with
        | Ok chan -> Some (nsc, app, chan, Netstack_chan.attach_tx nsc ~producer:app)
        | Error e -> failwith ("net-chan bind: " ^ e)
      end
      else begin
        ignore
          (Invoke.call_exn (Kernel.ctx k consume) net.System.stack ~iface:"stack"
             ~meth:"bind_port" [ Value.Int 7 ]);
        None
      end
    in
    let ctx = Kernel.ctx k kdom in
    let payload = String.make size 'p' in
    let tp = Wire.Transport.build ctx ~sport:9 ~dport:7 (Bytes.of_string payload) in
    let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
    let packet = Bytes.to_string (Wire.Frame.build ctx ~dst:42 ~src:13 np) in
    let clock = Kernel.clock k in
    let before = Clock.now clock in
    for _ = 1 to n do
      Nic.inject (Kernel.nic k) packet;
      Kernel.step k ~ticks:1 ()
    done;
    Kernel.step k ~ticks:4 ();
    let delivered, echoed =
      match ring with
      | None ->
        let p =
          match
            Invoke.call_exn (Kernel.ctx k consume) net.System.stack ~iface:"stack"
              ~meth:"pending" [ Value.Int 7 ]
          with
          | Value.Int p -> p
          | _ -> 0
        in
        (p, None)
      | Some (nsc, app, chan, tx) ->
        (* server loop: drain the port ring, echo every request back
           through the MPSC transmit group *)
        let msgs = Chan.recv_batch ~account:false chan () in
        let mmu = Machine.mmu (Kernel.machine k) in
        Mmu.switch_context mmu app.Domain.id;
        let uctx = Kernel.ctx k app in
        let sent =
          List.fold_left
            (fun acc m ->
              match Netwire.Delivery.parse uctx m with
              | Ok { Netwire.Delivery.src; sport; payload } ->
                if Netstack_chan.submit tx uctx ~dst:src ~sport:7 ~dport:sport payload
                then acc + 1
                else acc
              | Error _ -> acc)
            0 msgs
        in
        Mmu.switch_context mmu kdom.Domain.id;
        ignore (Netstack_chan.drain_tx nsc);
        Kernel.step k ~ticks:(sent + 4) ();
        let on_wire = List.length (Nic.take_transmitted (Kernel.nic k)) in
        (List.length msgs, Some (sent, on_wire))
    in
    say "%d/%d packets of %dB delivered; %d cycles (%.1f cycles/packet)" delivered n
      size
      (Clock.now clock - before)
      (float_of_int (Clock.now clock - before) /. float_of_int n);
    (match echoed with
    | Some (sent, on_wire) ->
      say "net-chan: %d deliveries drained from /net/7/rx; %d echoes submitted, %d frames on the wire"
        delivered sent on_wire
    | None -> ());
    say "counters:";
    List.iter
      (fun (name, v) -> say "  %-24s %d" name v)
      (Clock.counters clock);
    if trace then begin
      (* a couple of sends through the agent: re-binding /shared/network
         resolves to the interposer now occupying the name *)
      let agent = Kernel.bind k kdom "/shared/network" in
      for _ = 1 to 2 do
        ignore
          (Invoke.call_exn ctx agent ~iface:"netdev" ~meth:"send"
             [ Value.Blob (Bytes.create 64) ])
      done;
      Kernel.step k ~ticks:1 ();
      let obs = Clock.obs clock in
      let tracer = Obs.tracer obs in
      say "";
      say "trace: %d spans recorded, %d dropped (ring capacity %d)"
        (Tracer.recorded tracer) (Tracer.dropped tracer) (Tracer.capacity tracer);
      say "span tree (most recent %d spans):" (List.length (Tracer.spans tracer));
      Format.printf "%a%!" Tracer.pp_tree tracer;
      say "";
      say "metrics:";
      print_string (Metrics.to_text (Obs.metrics obs));
      (match Tracesvc.uninterpose tsvc "/shared/network" with
      | Ok () -> say "trace agent removed; /shared/network restored"
      | Error e -> say "uninterpose: %s" e);
      Obs.disable obs
    end;
    if stats then begin
      (* read the accounting the way any client would: bind /stats/kernel
         in the name space and invoke its exported methods *)
      let stats_obj = Kernel.bind k kdom "/stats/kernel" in
      let call meth =
        match
          Invoke.call_exn ctx stats_obj ~iface:"stats" ~meth [ Value.Str "text" ]
        with
        | Value.Str s -> s
        | _ -> ""
      in
      say "";
      say "%s" (call "snapshot");
      say "";
      say "flight recorder:";
      (match
         Invoke.call_exn ctx stats_obj ~iface:"stats" ~meth:"flight"
           [ Value.Int 0 ]
       with
      | Value.Str s -> say "%s" s
      | _ -> ());
      Obs.disable (Clock.obs (Kernel.clock k))
    end
  in
  Cmd.v
    (Cmd.info "packets"
       ~doc:"Push a packet workload through a placement and report cycle counters.")
    Term.(
      const run $ seed_t $ cpus_t $ placement_t $ count_t $ size_t $ trace_t
      $ stats_t $ net_chan_t)

(* --- certify ---------------------------------------------------------------- *)

let certify_cmd =
  let name_t =
    Arg.(value & opt string "mycomponent" & info [ "name" ] ~docv:"NAME" ~doc:"Component name.")
  in
  let size_t =
    Arg.(value & opt int 8192 & info [ "size" ] ~docv:"BYTES" ~doc:"Code size.")
  in
  let author_t =
    Arg.(value & opt string "third-party" & info [ "author" ] ~docv:"AUTHOR" ~doc:"Author.")
  in
  let type_safe_t =
    Arg.(value & flag & info [ "type-safe" ] ~doc:"Compiled by the trusted compiler.")
  in
  let annotated_t =
    Arg.(value & flag & info [ "annotated" ] ~doc:"Ships with proof annotations.")
  in
  let run seed cpus name size author type_safe annotated =
    let sys = create_system ~seed ~cpus in
    let auth = System.authority sys in
    let meta =
      Meta.make ~author ~type_safe ~proof_annotated:annotated ~name ~size ()
    in
    let code = Codegen.synthesize ~name ~size in
    say "certifying %s" (Format.asprintf "%a" Meta.pp meta);
    let outcome = Authority.certify auth meta ~code ~now:0 in
    List.iter
      (fun (delegate, verdict) ->
        say "  %-18s %s" delegate
          (match verdict with
          | Authority.Accept -> "ACCEPT"
          | Authority.Reject r -> "reject: " ^ r
          | Authority.Cannot_decide -> "cannot decide"))
      outcome.Authority.trail;
    (match outcome.Authority.certificate with
    | Some cert ->
      say "certificate issued by %s at %d (off-line latency: %d cycles)"
        cert.Certificate.signer.Principal.name cert.Certificate.issued_at
        outcome.Authority.elapsed;
      (* show that the kernel would accept it *)
      let k = System.kernel sys in
      (match Certsvc.validate (Kernel.certification k) cert ~code with
      | Validator.Valid { chain_length } ->
        say "kernel validation: OK (speaks-for chain length %d)" chain_length
      | Validator.Invalid f ->
        say "kernel validation: REFUSED (%s)" (Validator.failure_to_string f))
    | None -> say "no delegate certified the component; kernel admission only via sandbox")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Run a component description through the certification delegate chain.")
    Term.(const run $ seed_t $ cpus_t $ name_t $ size_t $ author_t $ type_safe_t $ annotated_t)


(* --- filter ------------------------------------------------------------------ *)

let filter_cmd =
  let expr_t =
    Arg.(
      value
      & opt string "byte[19] == 7 && byte[18] == 0"
      & info [ "expr" ] ~docv:"EXPR" ~doc:"Filter expression.")
  in
  let sandbox_t =
    Arg.(value & flag & info [ "sandbox" ] ~doc:"Show the SFI-rewritten program too.")
  in
  let run expr sandbox =
    match Filterc.compile_string expr with
    | Error e ->
      say "compile error: %s" e;
      exit 1
    | Ok program ->
      say "filter: %s" expr;
      say "object code (%d instructions, %d bytes):" (Vm.instr_count program)
        (String.length (Vm.encode program));
      Format.printf "%a%!" Vm.pp_program program;
      if sandbox then begin
        match Sfi_rewrite.rewrite program ~window_size:2048 with
        | Error e -> say "sfi rewrite error: %s" e
        | Ok sb ->
          say "";
          say "SFI-rewritten for a 2048-byte window (%d instructions):"
            (Vm.instr_count sb);
          Format.printf "%a%!" Vm.pp_program sb
      end;
      (* run it against a sample packet built by the stack's own wire code *)
      let clock = Clock.create () in
      let ctx = Call_ctx.make ~clock ~costs:Cost.default ~caller_domain:0 in
      let tp = Wire.Transport.build ctx ~sport:9 ~dport:7 (Bytes.of_string "sample") in
      let np = Wire.Net.build ctx ~src:13 ~dst:42 ~ttl:8 ~proto:Stack.proto_transport tp in
      let frame = Wire.Frame.build ctx ~dst:42 ~src:13 np in
      Clock.reset clock;
      (match Vm.run ctx ~mem:(Vm.mem_of_bytes frame) program with
      | Vm.Returned v ->
        say "";
        say "on a sample port-7 frame: returned %d (%s) in %d cycles" v
          (if v <> 0 then "accept" else "drop")
          (Clock.now clock)
      | Vm.Wild_access o -> say "wild access at %d" o
      | Vm.Vm_fault m -> say "vm fault: %s" m)
  in
  Cmd.v
    (Cmd.info "filter"
       ~doc:"Compile a packet-filter expression and show/run its object code.")
    Term.(const run $ expr_t $ sandbox_t)

(* --- kv: the whole-system workload ------------------------------------- *)

let kv_cmd =
  let count_t =
    Arg.(
      value & opt int 8
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Keys to put before reading back.")
  in
  let store_placement_t =
    let store_conv =
      Arg.enum
        [ ("certified", `Certified); ("verified", `Verified); ("user", `User) ]
    in
    Arg.(
      value & opt store_conv `Certified
      & info [ "store-placement" ] ~docv:"PLACEMENT"
          ~doc:
            "Storage-stack placement: $(b,certified), $(b,verified) or \
             $(b,user).")
  in
  let run seed cpus n placement =
    let sys = create_system ~seed ~cpus in
    let k = System.kernel sys in
    let net =
      System.setup_networking sys ~placement:System.Certified ~addr:42
        ~loopback:true ()
    in
    let nsc, _svc = System.channel_net sys net () in
    let placement =
      match placement with
      | `Certified -> System.Certified
      | `Verified -> System.Verified
      | `User -> System.User (System.new_domain sys "storeuser")
    in
    ignore (System.setup_store sys ~placement ~cache_capacity:16 ());
    let kdom = Kernel.kernel_domain k in
    let api = Kernel.api k in
    let kv = Kv.create api kdom ~name:"kv0" ~log:"/store/log0" () in
    (match Kv.serve api kdom ~kv ~net:nsc ~port:70 () with
    | Ok _ -> ()
    | Error e ->
      say "kv: serve failed: %s" (Oerror.to_string e);
      exit 1);
    let cdom = System.new_domain sys "kvclient" in
    let ring =
      match Netstack_chan.bind nsc ~port:71 ~owner:cdom ~mode:Chan.Poll () with
      | Ok c -> c
      | Error e ->
        say "kv: bind failed: %s" e;
        exit 1
    in
    let txh = Netstack_chan.attach_tx nsc ~producer:cdom in
    let mmu = Machine.mmu (Kernel.machine k) in
    (* one request/response round trip over the loopback rings: submit
       from the client domain, pump the kernel, drain the reply ring *)
    let request ~op ~key value =
      Mmu.switch_context mmu cdom.Domain.id;
      let cctx = Kernel.ctx k cdom in
      let req =
        Storewire.Kvmsg.build_req cctx ~op ~key:(Bytes.of_string key)
          (Bytes.of_string value)
      in
      ignore (Netstack_chan.submit txh cctx ~dst:42 ~sport:71 ~dport:70 req);
      Mmu.switch_context mmu kdom.Domain.id;
      ignore (Netstack_chan.drain_tx nsc);
      Kernel.step k ~ticks:4 ();
      Mmu.switch_context mmu cdom.Domain.id;
      let replies = Chan.recv_batch ring () in
      let out =
        match replies with
        | [ msg ] -> (
          match Netwire.Delivery.parse cctx msg with
          | Error e -> Error e
          | Ok d -> (
            match Storewire.Kvmsg.parse_resp cctx d.Netwire.Delivery.payload with
            | Error e -> Error e
            | Ok r ->
              if r.Storewire.Kvmsg.status = Storewire.Kvmsg.status_ok then
                Ok (Some (Bytes.to_string r.Storewire.Kvmsg.payload))
              else Ok None))
        | [] -> Error "no reply"
        | _ -> Error "multiple replies"
      in
      Mmu.switch_context mmu kdom.Domain.id;
      out
    in
    let show = function
      | Error e -> Printf.sprintf "error (%s)" e
      | Ok None -> "not-found"
      | Ok (Some "") -> "ok"
      | Ok (Some v) -> Printf.sprintf "ok %S" v
    in
    say "kv over /net port 70, backed by /store/log0 -> cache0 -> part0 -> blkdrv";
    for i = 0 to n - 1 do
      let key = Printf.sprintf "key-%02d" i in
      let r = request ~op:Storewire.kv_put ~key (Printf.sprintf "value-%02d" i) in
      say "  put %s -> %s" key (show r)
    done;
    say "  get key-01 -> %s" (show (request ~op:Storewire.kv_get ~key:"key-01" ""));
    say "  del key-01 -> %s" (show (request ~op:Storewire.kv_del ~key:"key-01" ""));
    say "  get key-01 -> %s" (show (request ~op:Storewire.kv_get ~key:"key-01" ""));
    (match
       Invoke.call (Kernel.ctx k kdom) kv ~iface:"kv" ~meth:"flush" []
     with
    | Ok (Value.Int blocks) -> say "  flush -> %d block(s) written back" blocks
    | Ok _ | Error _ -> say "  flush failed");
    Kernel.step k ~ticks:2 ();
    let counters = (Clock.snapshot (Kernel.clock k)).Clock.counts in
    let c name = try List.assoc name counters with Not_found -> 0 in
    say "device: %d DMA issue(s), %d completion(s), %d cache flush(es)"
      (c "blk_issue") (c "blk_complete") (c "cache_flush");
    say "cycles: %d" (Clock.now (Kernel.clock k))
  in
  Cmd.v
    (Cmd.info "kv"
       ~doc:
         "Run the whole-system KV workload: a client domain speaks to a \
          key-value server over the channel-backed network path, and the \
          server persists through the /store stack (append-only log over a \
          write-back cache over a partition over the DMA block device).")
    Term.(const run $ seed_t $ cpus_t $ count_t $ store_placement_t)

let () =
  let doc = "Paramecium extensible-kernel reproduction demos" in
  let main = Cmd.group (Cmd.info "paramecium_demo" ~doc) [ info_cmd; ls_cmd; packets_cmd; certify_cmd; filter_cmd; kv_cmd ] in
  exit (Cmd.eval main)
