(* pm_query — causal tracing and time-travel queries over a recording.

   Reads a pm-replay-v1 file (made with `pm_replay <scenario> --trace
   --record FILE`) and answers two families of questions offline:

   - causal: per-request span trees, per-layer cycle attribution,
     top-K slowest, critical paths — the fold in Pm_query.Query;
   - time-travel: state-at-cycle over the structural archive — what
     held frame F at cycle N, who was bound at path P, which domain
     owned component C.

   Exit status: 0 = answered, 1 = query failed (incomplete or damaged
   history, unknown rid, nothing bound), 2 = usage. *)

open Paramecium

let usage =
  "usage: pm_query FILE [--requests] [--request RID] [--slowest K] \
   [--layers] [--frame F --at N] [--bound PATH --at N] [--owner NAME --at N]"

let die code msg =
  prerr_endline ("pm_query: " ^ msg);
  if code = 2 then prerr_endline usage;
  exit code

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error e -> die 2 e

type action =
  | Requests
  | Request of int
  | Slowest of int
  | Layers
  | Frame of int
  | Bound of string
  | Owner of string

let () =
  let file = ref None in
  let actions = ref [] in
  let at = ref None in
  let int_arg flag v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> die 2 (flag ^ " wants an integer, got " ^ v)
  in
  let rec parse = function
    | [] -> ()
    | "--requests" :: rest ->
      actions := Requests :: !actions;
      parse rest
    | "--request" :: v :: rest ->
      actions := Request (int_arg "--request" v) :: !actions;
      parse rest
    | "--slowest" :: v :: rest ->
      actions := Slowest (int_arg "--slowest" v) :: !actions;
      parse rest
    | "--layers" :: rest ->
      actions := Layers :: !actions;
      parse rest
    | "--frame" :: v :: rest ->
      actions := Frame (int_arg "--frame" v) :: !actions;
      parse rest
    | "--bound" :: v :: rest ->
      actions := Bound v :: !actions;
      parse rest
    | "--owner" :: v :: rest ->
      actions := Owner v :: !actions;
      parse rest
    | "--at" :: v :: rest ->
      at := Some (int_arg "--at" v);
      parse rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' && !file = None ->
      file := Some a;
      parse rest
    | a :: _ -> die 2 ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> die 2 "no recording file" in
  let actions =
    match List.rev !actions with [] -> [ Requests ] | l -> l
  in
  let recording =
    match Replay.recording_of_string (read_file file) with
    | Ok r -> r
    | Error e -> die 2 (file ^ ": " ^ e)
  in
  let imported =
    match Journal.import_all recording.Replay.journal with
    | Ok i -> i
    | Error e -> die 1 ("recorded journal unreadable: " ^ e)
  in
  let events = imported.Journal.events in
  (* the causal fold, shared by every span query; fails soft by name on
     a truncated history, so compute it lazily and only when needed *)
  let requests =
    lazy (Query.fold ~complete:imported.Journal.complete events)
  in
  let need_requests () =
    match Lazy.force requests with
    | Ok [] -> die 1 "no traced requests in this recording (record with --trace)"
    | Ok reqs -> reqs
    | Error e -> die 1 e
  in
  let need_at flag =
    match !at with
    | Some n -> n
    | None -> die 2 (flag ^ " needs --at N")
  in
  List.iter
    (fun action ->
      match action with
      | Requests ->
        List.iter
          (fun r -> print_endline (Query.request_line r))
          (need_requests ())
      | Request rid -> (
        match
          List.find_opt (fun r -> r.Query.rid = rid) (need_requests ())
        with
        | Some r ->
          print_endline (Query.request_to_text r);
          print_endline ("  attribution " ^ Query.attribution_to_text r)
        | None -> die 1 (Printf.sprintf "no request %d in this recording" rid))
      | Slowest k ->
        List.iter
          (fun r -> print_endline (Query.request_line r))
          (Query.slowest k (need_requests ()))
      | Layers -> print_endline (Query.layer_totals_to_text (need_requests ()))
      | Frame f -> (
        match Query.frame_holders events ~frame:f ~at:(need_at "--frame") with
        | [] -> die 1 (Printf.sprintf "no domain held frame %d" f)
        | holders ->
          print_endline
            (Printf.sprintf "frame %d @%d held by %s" f (need_at "--frame")
               (String.concat " " (List.map string_of_int holders))))
      | Bound path -> (
        match Query.bound_at events ~path ~at:(need_at "--bound") with
        | Some h ->
          print_endline
            (Printf.sprintf "%s @%d bound to handle %d" path (need_at "--bound") h)
        | None -> die 1 (Printf.sprintf "nothing bound at %s" path))
      | Owner name -> (
        match Query.owner_of events ~name ~at:(need_at "--owner") with
        | Some d ->
          print_endline
            (Printf.sprintf "%s @%d owned by domain %d" name (need_at "--owner") d)
        | None -> die 1 (Printf.sprintf "no component %s" name)))
    actions
