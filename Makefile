.PHONY: all build test bench bench-output fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# regenerate the committed reference run (simulated cycles, deterministic)
bench-output:
	dune exec bench/main.exe > bench_output.txt

# ocamlformat is optional in minimal toolchains; skip gracefully when absent
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping"; \
	fi

check: fmt build test

clean:
	dune clean
