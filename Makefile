.PHONY: all build test bench bench-smoke demo-smoke replay-smoke trace-smoke bench-output lint fmt check clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# the assertion-bearing experiments at reduced iteration counts, for CI
bench-smoke:
	dune exec bench/main.exe -- obs e14 e15 e16 e18 e19 e20 e21 e22 e23 replay --quick

# the channel-backed data path exercised through the demo binary, and
# the whole-system KV workload on top of it
demo-smoke:
	dune exec bin/paramecium_demo.exe -- packets --net-chan -n 10
	dune exec bin/paramecium_demo.exe -- kv -n 4

# record/replay determinism: every scenario self-checks, and a recording
# written to disk replays byte-identically after a round-trip
replay-smoke:
	dune exec bin/pm_replay.exe -- --list
	dune exec bin/pm_replay.exe -- packets --lint --quiet
	dune exec bin/pm_replay.exe -- crash --lint --quiet
	dune exec bin/pm_replay.exe -- deadlock --lint --quiet
	dune exec bin/pm_replay.exe -- kv --lint --quiet
	dune exec bin/pm_replay.exe -- compose --lint --record /tmp/pm_compose.rec --quiet
	dune exec bin/pm_replay.exe -- --replay /tmp/pm_compose.rec --quiet

# causal tracing end to end: record the KV workload with tracing on,
# then the offline query tool must produce a per-layer cycle breakdown
# and answer a state-at-cycle question from the same recording
trace-smoke:
	dune exec bin/pm_replay.exe -- kv --trace --record /tmp/pm_kv_trace.rec --quiet
	dune exec bin/pm_query.exe -- /tmp/pm_kv_trace.rec --layers | grep cyc
	dune exec bin/pm_query.exe -- /tmp/pm_kv_trace.rec --slowest 3 | grep rid
	dune exec bin/pm_query.exe -- /tmp/pm_kv_trace.rec --bound /store/log0 --at 999999999 | grep bound

# composition lint: the demo system must lint clean, and the linter must
# catch each seeded violation (non-zero exit inverted with !)
lint:
	dune build @all
	dune exec bin/pm_lint.exe
	! dune exec bin/pm_lint.exe -- --seed non-superset --quiet
	! dune exec bin/pm_lint.exe -- --seed spsc --quiet
	! dune exec bin/pm_lint.exe -- --seed cross-cpu --quiet
	! dune exec bin/pm_lint.exe -- --seed store-order --quiet
	! dune exec bin/pm_lint.exe -- --seed store-dangling --quiet
	dune exec bin/pm_lint.exe -- --seed spsc --json | grep -q '"rule":"spsc"'
	dune exec bin/pm_lint.exe -- --seed cross-cpu --json | grep -q '"rule":"cross-cpu"'

# regenerate the committed reference run (simulated cycles, deterministic)
bench-output:
	dune exec bench/main.exe > bench_output.txt

# ocamlformat is optional in minimal toolchains; skip gracefully when absent
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "fmt: ocamlformat not installed, skipping"; \
	fi

check: fmt build test

clean:
	dune clean
